"""Synthetic address-space management for generated traces.

Task parameters are 48-bit memory addresses.  The workload generators
allocate addresses through :class:`AddressSpace` so that

* distinct objects never alias (each allocation is cache-line aligned and
  strictly increasing),
* the addresses look like what an application would produce: a common
  heap base with object-to-object strides, so that only the lower ~20
  bits vary — the property the paper's distribution hash exploits
  (Section IV-B),
* traces remain deterministic for a given seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.common.constants import ADDRESS_MASK, CACHE_LINE_BYTES
from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng

#: Heap base used when the caller does not specify one.  Mirrors a typical
#: 64-bit Linux heap mapping; only the lower bits vary between objects.
DEFAULT_HEAP_BASE = 0x7F3A_0000_0000


class AddressSpace:
    """Allocates distinct, cache-line-aligned synthetic addresses."""

    def __init__(
        self,
        base: int = DEFAULT_HEAP_BASE,
        stride: int = CACHE_LINE_BYTES,
        seed: Optional[int] = None,
        randomize_offsets: bool = False,
    ) -> None:
        if base < 0 or base > ADDRESS_MASK:
            raise ConfigurationError(f"base address {base:#x} does not fit in 48 bits")
        if stride <= 0 or stride % CACHE_LINE_BYTES:
            raise ConfigurationError(
                f"stride must be a positive multiple of {CACHE_LINE_BYTES}, got {stride}"
            )
        self.base = base
        self.stride = stride
        self.randomize_offsets = randomize_offsets
        self._rng = make_rng(seed, "address-space")
        self._next_offset = 0

    def alloc(self, count: int = 1) -> List[int]:
        """Allocate ``count`` distinct addresses (cache-line aligned)."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        addresses: List[int] = []
        for _ in range(count):
            offset = self._next_offset
            if self.randomize_offsets:
                # Skip a random number of lines to decorrelate neighbouring
                # objects while preserving uniqueness and determinism.
                offset += int(self._rng.integers(0, 4)) * self.stride
            address = (self.base + offset) & ADDRESS_MASK
            addresses.append(address)
            self._next_offset = offset + self.stride
        return addresses

    def alloc_one(self) -> int:
        """Allocate a single address."""
        return self.alloc(1)[0]

    def alloc_array(self, count: int) -> np.ndarray:
        """Allocate ``count`` addresses and return them as a numpy array."""
        return np.asarray(self.alloc(count), dtype=np.uint64)

    def alloc_grid(self, rows: int, cols: int) -> np.ndarray:
        """Allocate a ``rows x cols`` grid of addresses (row-major)."""
        if rows < 0 or cols < 0:
            raise ConfigurationError(f"grid dimensions must be >= 0, got {rows}x{cols}")
        flat = self.alloc_array(rows * cols)
        return flat.reshape(rows, cols)
