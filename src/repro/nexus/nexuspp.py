"""Nexus++ — the centralised hardware task manager (the paper's baseline).

Nexus++ [7], [11] keeps a *single* task graph and processes whole tasks
through a 3-stage pipeline (Figure 1 of the paper):

1. **Input Parser** — receives the complete task descriptor from the host
   (4 header/synchronisation cycles plus 2 cycles per parameter; 12
   cycles for the 4-parameter example);
2. **Insert** — inserts all parameters into the set-associative task
   graph (2 + 4·P cycles; 18 cycles for the example) and determines the
   task's dependence count;
3. **Write Back** — forwards ready task ids to the Nexus IO unit
   (3 cycles each).

A second pipeline handles finished tasks: it kicks off waiting tasks and
cleans the tables; because there is only one task graph, that cleanup
contends with new insertions for the same table port, which this model
captures by running both on the same serial resource.

Nexus++ does **not** support the ``taskwait on`` pragma (Section III);
the machine simulator therefore degrades that barrier to a full
``taskwait`` when driving this manager, reproducing the H264dec behaviour
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.constants import (
    DEFAULT_KICKOFF_CAPACITY,
    DEFAULT_TABLE_SETS,
    DEFAULT_TABLE_WAYS,
    DEFAULT_TASK_POOL_ENTRIES,
)
from repro.common.errors import ConfigurationError
from repro.common.units import Frequency
from repro.common.validation import check_positive
from repro.managers.base import FinishOutcome, ReadyNotification, SubmitOutcome, TaskManagerModel
from repro.nexus.timing import (
    NEXUS_PP_TEST_FREQUENCY_MHZ,
    NexusPlusPlusTiming,
    shared_offset_tables,
)
from repro.sim.resource import SerialResource
from repro.taskgraph.table import AddressTable
from repro.taskgraph.task_pool import TaskPool
from repro.taskgraph.tracker import DependencyTracker
from repro.trace.task import TaskDescriptor


@dataclass(frozen=True)
class NexusPlusPlusConfig:
    """Configuration of a Nexus++ instance."""

    #: Manager clock frequency in MHz (100 MHz on the ZC706, Table I).
    frequency_mhz: float = NEXUS_PP_TEST_FREQUENCY_MHZ
    #: Pipeline latencies.
    timing: NexusPlusPlusTiming = field(default_factory=NexusPlusPlusTiming)
    #: Fall-through latency (cycles) of the FIFOs between pipeline stages.
    fifo_latency_cycles: int = 3
    #: Geometry of the single task graph.
    table_sets: int = DEFAULT_TABLE_SETS
    table_ways: int = DEFAULT_TABLE_WAYS
    kickoff_capacity: int = DEFAULT_KICKOFF_CAPACITY
    #: Task pool entries.
    task_pool_entries: int = DEFAULT_TASK_POOL_ENTRIES

    def __post_init__(self) -> None:
        check_positive("frequency_mhz", self.frequency_mhz)
        check_positive("fifo_latency_cycles", self.fifo_latency_cycles + 1)  # allow 0
        check_positive("table_sets", self.table_sets)
        check_positive("table_ways", self.table_ways)
        check_positive("kickoff_capacity", self.kickoff_capacity)
        check_positive("task_pool_entries", self.task_pool_entries)


class NexusPlusPlusManager(TaskManagerModel):
    """Cycle-approximate model of the Nexus++ centralised task manager."""

    supports_taskwait_on = False
    worker_overhead_us = 0.0

    def __init__(self, config: Optional[NexusPlusPlusConfig] = None) -> None:
        self.config = config or NexusPlusPlusConfig()
        self.name = "Nexus++"
        self._frequency = Frequency(self.config.frequency_mhz)
        self._cycle_us = self._frequency.cycle_time_us
        self._tracker = DependencyTracker(
            num_tables=1,
            table_factory=lambda index: AddressTable(
                num_sets=self.config.table_sets,
                ways=self.config.table_ways,
                kickoff_capacity=self.config.kickoff_capacity,
                name="nexus++-task-graph",
            ),
            task_pool=TaskPool(capacity=self.config.task_pool_entries, name="nexus++-task-pool"),
            distribution_key=("central",),
        )
        # Pipeline resources.  The Insert stage and the finished-task
        # cleanup share the single task graph's port.
        self._input_parser = SerialResource("nexus++-input-parser")
        self._task_graph = SerialResource("nexus++-task-graph-port")
        self._write_back = SerialResource("nexus++-write-back")
        # Precomputed cycle->µs constants and per-parameter-count tables
        # (grown on demand): per-task pipeline costs are table lookups
        # with bit-identical values instead of method calls + multiplies.
        # The tables are process-shared per (timing, cycle_us) — every
        # sweep point / batch lane with the same configuration aliases
        # the same grown lists instead of re-deriving them.
        timing = self.config.timing
        cycle_us = self._cycle_us
        self._fifo_us = self.config.fifo_latency_cycles * cycle_us
        self._writeback_us = timing.writeback_cycles * cycle_us
        self._notify_us = timing.finish_notify_cycles * cycle_us
        self._tables = shared_offset_tables(timing, cycle_us)
        self._input_us = self._tables.input_us
        self._insert_cycles = self._tables.insert_cycles
        self._cleanup_cycles = self._tables.cleanup_cycles
        #: Per-task bookkeeping for statistics.
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    # -- helpers ---------------------------------------------------------------
    def _cycles(self, cycles: float) -> float:
        """Convert manager cycles to micro-seconds."""
        return cycles * self._cycle_us

    def _grow_tables(self, count: int) -> None:
        """Extend the (shared) per-parameter-count latency tables."""
        self._tables.grow_pp(count)

    @property
    def frequency(self) -> Frequency:
        """The manager clock."""
        return self._frequency

    def reset(self) -> None:
        self._tracker.reset()
        self._input_parser.reset()
        self._task_graph.reset()
        self._write_back.reset()
        self._ready_latency_total_us = 0.0
        self._ready_count = 0

    def prepare_program(self, program) -> None:
        self._tracker.bind_program(program)

    # -- TaskManagerModel --------------------------------------------------------
    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        timing = self.config.timing
        result = self._tracker.insert_task(task)
        accesses = result.accesses
        num_params = task.num_params
        if num_params < 1:
            num_params = 1
        num_accesses = len(accesses) or 1
        if max(num_params, num_accesses) >= len(self._input_us):
            self._grow_tables(max(num_params, num_accesses))

        # Stage 1: Input Parser receives the whole task.  The serial
        # reservations below inline SerialResource.reserve (start =
        # max(earliest, next_free); end = start + duration) — identical
        # arithmetic without a call per pipeline stage.
        parser = self._input_parser
        duration = self._input_us[num_params]
        next_free = parser._next_free
        start = time_us if time_us > next_free else next_free
        input_end = start + duration
        parser._next_free = input_end
        stats = parser.stats
        stats.reservations += 1
        stats.busy_time += duration
        stats.total_wait += start - time_us
        stats.last_busy_until = input_end

        # Stage 2: Insert into the single task graph (whole task at once).
        insert_available = input_end + self._fifo_us
        insert_cycles = self._insert_cycles[num_accesses]
        conflicts = result.set_conflict_count
        if conflicts:
            insert_cycles += timing.set_conflict_stall_cycles * conflicts
        graph = self._task_graph
        duration = insert_cycles * self._cycle_us
        next_free = graph._next_free
        start = insert_available if insert_available > next_free else next_free
        insert_end = start + duration
        graph._next_free = insert_end
        stats = graph.stats
        stats.reservations += 1
        stats.busy_time += duration
        stats.total_wait += start - insert_available
        stats.last_busy_until = insert_end

        ready: tuple[ReadyNotification, ...] = ()
        if result.ready:
            wb_available = insert_end + self._fifo_us
            _, wb_end = self._write_back.reserve(wb_available, self._writeback_us)
            ready = (ReadyNotification(task.task_id, wb_end),)
            self._ready_latency_total_us += wb_end - time_us
            self._ready_count += 1

        # The host regains the bus as soon as the Input Parser consumed the
        # descriptor; the deeper pipeline stages overlap with the next task.
        return SubmitOutcome(accept_time_us=input_end, ready=ready)

    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        timing = self.config.timing
        result = self._tracker.finish_task(task_id)
        num_params = result.num_accesses
        if num_params < 1:
            num_params = 1
        if num_params >= len(self._cleanup_cycles):
            self._grow_tables(num_params)

        # The finished-task notification arrives over the same IO unit
        # (serial reservations inlined as in submit).
        parser = self._input_parser
        duration = self._notify_us
        next_free = parser._next_free
        start = time_us if time_us > next_free else next_free
        notify_end = start + duration
        parser._next_free = notify_end
        stats = parser.stats
        stats.reservations += 1
        stats.busy_time += duration
        stats.total_wait += start - time_us
        stats.last_busy_until = notify_end

        # Cleanup of the single task graph: delete the task's entries and
        # walk the kick-off lists of its addresses.
        cleanup_available = notify_end + self._fifo_us
        cleanup_cycles = self._cleanup_cycles[num_params]
        cleanup_cycles += timing.kickoff_cycles_per_waiter * result.kickoff_count
        graph = self._task_graph
        duration = cleanup_cycles * self._cycle_us
        next_free = graph._next_free
        start = cleanup_available if cleanup_available > next_free else next_free
        cleanup_end = start + duration
        graph._next_free = cleanup_end
        stats = graph.stats
        stats.reservations += 1
        stats.busy_time += duration
        stats.total_wait += start - cleanup_available
        stats.last_busy_until = cleanup_end

        notifications: List[ReadyNotification] = []
        wb_available = cleanup_end + self._fifo_us
        for ready_task in result.newly_ready:
            _, wb_end = self._write_back.reserve(wb_available, self._writeback_us)
            notifications.append(ReadyNotification(ready_task, wb_end))
            self._ready_latency_total_us += wb_end - time_us
            self._ready_count += 1
        return FinishOutcome(ready=tuple(notifications), notify_done_us=cleanup_end)

    def lane_kernel(self) -> None:
        """Nexus++ declines the vectorized batch lane kernel.

        Its pipeline state is history-dependent in ways the lane kernel
        cannot constant-fold: three serial resources (Input Parser, the
        task graph's single port, Write Back) interleave submit- and
        finish-side reservations, and the set-associative address table
        adds occupancy-dependent conflict stalls.  Batch lanes fall back
        to the scalar engine; they still benefit from the process-shared
        latency tables (:func:`repro.nexus.timing.shared_offset_tables`).
        """
        return None

    # -- reporting -----------------------------------------------------------------
    def describe(self) -> Mapping[str, object]:
        return {
            "name": self.name,
            "supports_taskwait_on": self.supports_taskwait_on,
            "frequency_mhz": self.config.frequency_mhz,
            "table_sets": self.config.table_sets,
            "table_ways": self.config.table_ways,
        }

    def statistics(self) -> Mapping[str, object]:
        table = self._tracker.tables[0]
        return {
            "tasks_inserted": self._tracker.total_inserted,
            "tasks_finished": self._tracker.total_finished,
            "input_parser_busy_us": self._input_parser.stats.busy_time,
            "task_graph_busy_us": self._task_graph.stats.busy_time,
            "write_back_busy_us": self._write_back.stats.busy_time,
            "set_conflicts": table.stats.set_conflicts,
            "max_live_addresses": table.stats.max_live_entries,
            "mean_ready_latency_us": (
                self._ready_latency_total_us / self._ready_count if self._ready_count else 0.0
            ),
        }
