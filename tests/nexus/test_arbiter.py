"""Tests for the Dependence Counts Arbiter gather model."""

import pytest

from repro.common.errors import SimulationError
from repro.nexus.arbiter import DependenceCountsArbiter


def make_arbiter(cycle_us=0.01):
    return DependenceCountsArbiter(
        cycles_per_result=1, conclude_cycles=1, decrement_cycles=1, cycle_us=cycle_us
    )


class TestGather:
    def test_single_result_concludes_immediately(self):
        arbiter = make_arbiter()
        arbiter.begin_task(1, expected_results=1)
        concluded = arbiter.collect_result(1, 0.0)
        assert concluded == pytest.approx(0.02)  # 1 collect + 1 conclude cycle
        assert arbiter.tasks_concluded == 1

    def test_multi_result_concludes_on_last(self):
        arbiter = make_arbiter()
        arbiter.begin_task(1, expected_results=3)
        assert arbiter.collect_result(1, 0.0) is None
        assert arbiter.collect_result(1, 0.0) is None
        concluded = arbiter.collect_result(1, 0.0)
        assert concluded is not None
        assert arbiter.pending_tasks == 0

    def test_results_serialise_on_the_arbiter(self):
        arbiter = make_arbiter()
        arbiter.begin_task(1, expected_results=1)
        arbiter.begin_task(2, expected_results=1)
        first = arbiter.collect_result(1, 0.0)
        second = arbiter.collect_result(2, 0.0)
        assert second > first

    def test_unknown_task_rejected(self):
        arbiter = make_arbiter()
        with pytest.raises(SimulationError):
            arbiter.collect_result(9, 0.0)

    def test_double_begin_rejected(self):
        arbiter = make_arbiter()
        arbiter.begin_task(1, expected_results=1)
        with pytest.raises(SimulationError):
            arbiter.begin_task(1, expected_results=1)

    def test_zero_expected_results_rejected(self):
        arbiter = make_arbiter()
        with pytest.raises(SimulationError):
            arbiter.begin_task(1, expected_results=0)


class TestDecrement:
    def test_decrement_advances_time(self):
        arbiter = make_arbiter()
        end = arbiter.decrement(5.0)
        assert end == pytest.approx(5.01)
        assert arbiter.decrements_processed == 1

    def test_decrements_serialise(self):
        arbiter = make_arbiter()
        first = arbiter.decrement(0.0)
        second = arbiter.decrement(0.0)
        assert second == pytest.approx(first + 0.01)


class TestMisc:
    def test_invalid_cycle_time(self):
        with pytest.raises(SimulationError):
            DependenceCountsArbiter(1, 1, 1, cycle_us=0.0)

    def test_busy_time_accumulates(self):
        arbiter = make_arbiter()
        arbiter.decrement(0.0)
        arbiter.decrement(0.0)
        assert arbiter.busy_time_us == pytest.approx(0.02)

    def test_reset(self):
        arbiter = make_arbiter()
        arbiter.begin_task(1, expected_results=2)
        arbiter.collect_result(1, 0.0)
        arbiter.reset()
        assert arbiter.pending_tasks == 0
        assert arbiter.busy_time_us == 0.0
        assert arbiter.tasks_concluded == 0
