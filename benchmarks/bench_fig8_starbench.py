"""Figure 8 — Starbench speedups: Nanos vs. Nexus++ vs. Nexus# vs. ideal.

Regenerates the speedup-vs-cores series for a representative subset of
the Table II workloads (the full set is covered by the Table IV
benchmark, which reports the same sweeps' maxima).  Nexus# uses 6 task
graphs at 55.56 MHz, Nexus++ runs at 100 MHz and Nanos is limited to 32
cores, as in the paper.
"""

import pytest

from repro.analysis.figures import figure8_report

WORKLOADS = ("c-ray", "sparselu", "streamcluster", "h264dec-1x1-10f")
CORE_COUNTS = (1, 4, 16, 64, 256)


def test_figure8_starbench_speedups(benchmark, report_recorder, scale, seed):
    report = benchmark.pedantic(
        figure8_report,
        kwargs={
            "workloads": WORKLOADS,
            "core_counts": CORE_COUNTS,
            "scale": scale,
            "seed": seed,
        },
        rounds=1, iterations=1,
    )
    report_recorder("fig8_starbench", report["text"])
    studies = report["studies"]

    # c-ray: long independent tasks — every manager is close to ideal at
    # moderate core counts (paper: ~31.5x for all managers on 32 cores).
    cray = studies["c-ray"]
    ideal_16 = cray.curves["Ideal"].speedup_at(16)
    for name in ("Nanos", "Nexus++", "Nexus# 6TG"):
        assert cray.curves[name].speedup_at(16) >= 0.85 * ideal_16

    # h264dec-1x1: the fine-grained headline — strict ordering
    # Nanos < Nexus++ < Nexus# (taskwait-on support + distributed graphs).
    h264 = studies["h264dec-1x1-10f"]
    assert h264.curves["Nanos"].max_speedup < h264.curves["Nexus++"].max_speedup
    assert h264.curves["Nexus++"].max_speedup < h264.curves["Nexus# 6TG"].max_speedup
    # Nanos does not scale at all on the finest granularity.
    assert h264.curves["Nanos"].max_speedup < 2.0

    # Hardware managers keep scaling beyond the 32-core Nanos limit.
    sc = studies["streamcluster"]
    assert sc.curves["Nexus# 6TG"].speedup_at(64) > sc.curves["Nanos"].max_speedup
