"""``python -m repro.tune`` — search the design space from the shell.

Two subcommands mirroring the experiments CLI:

``search``
    Build a :class:`~repro.tune.space.SearchSpace` from flags, run
    :class:`~repro.tune.search.SuccessiveHalving`, print per-rung
    progress and the final frontier, and (with ``--report``) write the
    :class:`~repro.tune.report.TuneReport` JSONL artifact.
``report``
    Re-render a previously written report file.

Execution flags (``--n-jobs``, ``--workers``, ``--batch-lanes``,
``--cache-dir``, ``--chaos-seed``/``--chaos-profile``) pass straight
through to the :class:`~repro.experiments.runner.SweepRunner`, so the
tuner parallelises — and injects faults — exactly like a plain sweep.

Example::

    python -m repro.tune search \\
        --workloads h264dec-1x1-10f h264dec-2x2-10f \\
        --tg 1 2 4 6 8 --geometries 256x8 64x4 --frequency 100 \\
        --cores 24 --scale 0.15 --objective makespan \\
        --cache-dir .tune-cache --report tune.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.frontier import frontier_table, render_tune_report
from repro.common.errors import ReproError
from repro.experiments.runner import SweepRunner
from repro.tune.objectives import OBJECTIVES
from repro.tune.report import TuneReport
from repro.tune.search import SuccessiveHalving
from repro.tune.space import SearchSpace, nexus_sharp_axis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="successive-halving config search over the sweep fabric",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="run a search")
    space = search.add_argument_group("search space")
    space.add_argument("--workloads", nargs="+", required=True,
                       help="registry workload names (the fidelity ladder)")
    space.add_argument("--managers", nargs="+", default=[],
                       help="manager candidates (nexus#6, nexus#4@100/64x4, "
                            "nexus++, ...)")
    space.add_argument("--tg", type=int, nargs="+", default=None,
                       metavar="N",
                       help="Nexus# task-graph counts to cross with "
                            "--geometries (adds to --managers)")
    space.add_argument("--geometries", nargs="+", default=["256x8"],
                       metavar="SxW",
                       help="dependence-table set geometries for --tg "
                            "(default: the paper's 256x8)")
    space.add_argument("--frequency", type=float, default=None, metavar="MHZ",
                       help="flat frequency for --tg candidates (default: "
                            "per-configuration synthesis frequency)")
    space.add_argument("--schedulers", nargs="+", default=["fifo"],
                       help="dispatch policies to search (default: fifo)")
    space.add_argument("--topologies", nargs="+", default=["homogeneous"],
                       help="core topologies to search (default: homogeneous)")
    space.add_argument("--cores", type=int, nargs="+", default=[16],
                       help="core counts of the evaluation setting")
    space.add_argument("--seeds", type=int, nargs="+", default=[2015],
                       help="workload seeds (each multiplies the ladder)")
    space.add_argument("--scale", type=float, default=0.1,
                       help="workload scale factor (default 0.1)")
    space.add_argument("--name", default="cli", help="search name (reports)")

    how = search.add_argument_group("search strategy")
    how.add_argument("--objective", default="makespan",
                     choices=sorted(OBJECTIVES),
                     help="what to maximise (default makespan)")
    how.add_argument("--budget", type=int, default=None, metavar="CELLS",
                     help="bound on scheduled grid cells (cache hits count)")
    how.add_argument("--eta", type=int, default=2,
                     help="halving rate per rung (default 2)")
    how.add_argument("--min-units", type=int, default=1,
                     help="fidelity units of the first rung (default 1)")

    execution = search.add_argument_group("execution")
    execution.add_argument("--n-jobs", default="1", metavar="N|auto",
                           help="worker processes per rung sweep")
    execution.add_argument("--workers", default=None, metavar="N|auto",
                           help="run rungs on the distributed sweep fabric "
                                "with this many socket workers")
    execution.add_argument("--batch-lanes", type=int, default=1, metavar="N",
                           help="vectorized lane width for serial execution")
    execution.add_argument("--cache-dir", default=None,
                           help="content-addressed result cache directory "
                                "(strongly recommended: makes re-promotion "
                                "and warm re-runs free)")
    execution.add_argument("--chaos-seed", type=int, default=None,
                           metavar="SEED",
                           help="deterministic fault injection for the "
                                "fabric (needs --workers)")
    execution.add_argument("--chaos-profile", default=None, metavar="NAME",
                           help="fault profile for --chaos-seed "
                                "(default soak)")
    search.add_argument("--report", default=None, metavar="PATH",
                        help="write the TuneReport JSONL artifact here")
    search.add_argument("--quiet", action="store_true",
                        help="suppress per-rung progress lines")

    report = commands.add_parser("report", help="render a report file")
    report.add_argument("jsonl", help="path written by `search --report`")
    return parser


def _build_space(args: argparse.Namespace) -> SearchSpace:
    managers: List[str] = list(args.managers)
    if args.tg:
        managers.extend(nexus_sharp_axis(
            args.tg, args.geometries, frequency_mhz=args.frequency))
    return SearchSpace(
        managers=tuple(managers),
        workloads=tuple(args.workloads),
        schedulers=tuple(args.schedulers),
        topologies=tuple(args.topologies),
        core_counts=tuple(args.cores),
        seeds=tuple(args.seeds),
        scale=args.scale,
        name=args.name,
    )


def _build_runner(args: argparse.Namespace) -> Optional[SweepRunner]:
    distributed = args.workers is not None
    chaos = None
    if args.chaos_seed is not None or args.chaos_profile is not None:
        if not distributed:
            print("error: --chaos-seed/--chaos-profile need the distributed "
                  "fabric (--workers)", file=sys.stderr)
            return None
        chaos = f"{args.chaos_profile or 'soak'}:{args.chaos_seed or 0}"
    return SweepRunner(
        args.n_jobs,
        cache_dir=args.cache_dir,
        batch_lanes=args.batch_lanes,
        transport="sockets" if distributed else "local",
        workers=args.workers,
        chaos=chaos,
    )


def _run_search(args: argparse.Namespace) -> int:
    runner = _build_runner(args)
    if runner is None:
        return 2
    space = _build_space(args)
    driver = SuccessiveHalving(
        space,
        args.objective,
        eta=args.eta,
        min_units=args.min_units,
        budget=args.budget,
        runner=runner,
    )
    log = None if args.quiet else (lambda message: print(message, flush=True))
    result = driver.run(log=log)
    tune_report = TuneReport(result)
    if args.report is not None:
        path = tune_report.write(args.report)
        print(f"report: {path}")
    final = result.rungs[-1]
    print()
    print(frontier_table(
        [entry.describe() for entry in final.frontier],
        title=f"final frontier (rung {final.index}, "
              f"{len(final.units)} units)"))
    assert result.best is not None
    best = result.best
    print(f"\nbest: {best.candidate.key} score {best.score:.4g} — "
          f"{result.total_cells} cells, {result.total_executed} simulated, "
          f"{result.total_cache_hits} cached")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "search":
            return _run_search(args)
        print(render_tune_report(TuneReport.load(args.jsonl)))
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
