"""FPGA resource and frequency model (Table I).

The paper synthesises Nexus++ and Nexus# (1..8 task graphs) for the
Xilinx ZYNQ-7 ZC706 board and reports register/LUT/BRAM utilisation and
the maximum clock frequency (Table I).  Re-running Vivado is out of scope
for a Python reproduction, so this package provides an analytical model
calibrated on Table I: resources grow (roughly linearly) with the number
of task graphs, the arbiter adds a super-linear LUT term, and the
achievable frequency degrades as the arbiter fan-in grows.
"""

from repro.fpga.resources import (
    ZC706_DEVICE,
    DeviceCapacity,
    ResourceEstimate,
    estimate_nexus_pp,
    estimate_nexus_sharp,
    paper_table1_rows,
    table1,
)

__all__ = [
    "DeviceCapacity",
    "ResourceEstimate",
    "ZC706_DEVICE",
    "estimate_nexus_pp",
    "estimate_nexus_sharp",
    "paper_table1_rows",
    "table1",
]
