"""Task pool: in-flight task descriptor storage.

The Input Parser "stores the new task in the Task Pool.  This is
important at the end of a task's life cycle; i.e., after running it", the
pool is read again to redistribute the task's addresses to the task
graphs for cleanup (Section IV-B).  The pool has a bounded number of
entries in hardware; when it is full the Input Parser stalls and
back-pressures the host, which the timing layer models by delaying
subsequent submissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.constants import DEFAULT_TASK_POOL_ENTRIES
from repro.common.errors import CapacityError, SimulationError
from repro.common.validation import check_positive
from repro.trace.task import TaskDescriptor


@dataclass
class TaskPoolStats:
    """Cumulative statistics of a :class:`TaskPool`."""

    inserts: int = 0
    removals: int = 0
    full_events: int = 0
    peak_occupancy: int = 0


class TaskPool:
    """Bounded storage of in-flight task descriptors."""

    def __init__(self, capacity: int = DEFAULT_TASK_POOL_ENTRIES, name: str = "task-pool") -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity
        self.name = name
        self._tasks: Dict[int, TaskDescriptor] = {}
        self.stats = TaskPoolStats()

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    @property
    def is_full(self) -> bool:
        """True when no free entry exists."""
        return len(self._tasks) >= self.capacity

    @property
    def occupancy(self) -> int:
        return len(self._tasks)

    def insert(self, task: TaskDescriptor) -> bool:
        """Store ``task``; returns ``True`` if the pool was full at insert time.

        The functional model always stores the task (the hardware would
        stall the Input Parser instead of dropping it); the returned flag
        lets the timing layer account for that stall.
        """
        if task.task_id in self._tasks:
            raise SimulationError(f"{self.name}: task {task.task_id} inserted twice")
        was_full = self.is_full
        if was_full:
            self.stats.full_events += 1
        self._tasks[task.task_id] = task
        self.stats.inserts += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._tasks))
        return was_full

    def get(self, task_id: int) -> TaskDescriptor:
        """Read the descriptor of an in-flight task."""
        task = self._tasks.get(task_id)
        if task is None:
            raise SimulationError(f"{self.name}: task {task_id} is not in the pool")
        return task

    def remove(self, task_id: int) -> TaskDescriptor:
        """Remove and return the descriptor of a finished task."""
        task = self._tasks.pop(task_id, None)
        if task is None:
            raise SimulationError(f"{self.name}: removing unknown task {task_id}")
        self.stats.removals += 1
        return task

    def reset(self) -> None:
        self._tasks.clear()
        self.stats = TaskPoolStats()
