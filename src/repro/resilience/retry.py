"""Retry with exponential backoff, deterministic jitter and a deadline.

The one retry policy every client-side seam shares (`ServeClient`, the
socket worker's ``--connect`` loop, the batcher's fabric backend), so
backoff behaviour is uniform and — crucially for the test suite and the
chaos soak — **reproducible**: the jitter is not drawn from a global
RNG but derived from ``(seed, key, attempt)`` with a hash, so the exact
backoff schedule of any retry loop is a pure function of its inputs.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.common.errors import ConfigurationError, ReproError


class RetryBudgetExhausted(ReproError):
    """A retry loop ran out of attempts or deadline.

    Carries the number of attempts made, the elapsed wall time and the
    last underlying error (also chained as ``__cause__``).
    """

    def __init__(self, message: str, *, attempts: int, elapsed: float,
                 last_error: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed
        self.last_error = last_error


def _hash_fraction(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform-ish fraction in ``[0, 1)``."""
    digest = hashlib.blake2b(
        f"{seed}:{key}:{attempt}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline budget.

    Parameters
    ----------
    max_attempts:
        Total tries (the first call counts as attempt 0); at most
        ``max_attempts - 1`` retries happen.
    base_delay / multiplier / max_delay:
        The backoff curve: the delay before retry ``n`` (0-based) is
        ``min(base_delay * multiplier**n, max_delay)``, scaled by jitter.
    jitter:
        Fraction of each delay that is jittered away: the effective
        delay is ``delay * (1 - jitter * f)`` where ``f`` ∈ [0, 1) is a
        **deterministic** hash of ``(seed, key, attempt)`` — no global
        RNG, so two runs with the same policy and key back off on the
        byte-same schedule.
    deadline:
        Total wall-clock budget in seconds across all attempts and
        sleeps; ``None`` means attempts alone bound the loop.
    seed:
        Jitter seed (part of the hash, not a RNG state).
    """

    max_attempts: int = 5
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}")

    # -- schedule ----------------------------------------------------------
    def delay(self, attempt: int, *, key: str = "") -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * _hash_fraction(self.seed, key, attempt))

    def schedule(self, *, key: str = "") -> Tuple[float, ...]:
        """The full deterministic backoff schedule for ``key``."""
        return tuple(self.delay(n, key=key) for n in range(self.max_attempts - 1))


def call_with_retry(
    fn: Callable[[], object],
    policy: RetryPolicy,
    *,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    key: str = "",
    describe: str = "operation",
    retry_after: Optional[Callable[[BaseException], Optional[float]]] = None,
    should_retry: Optional[Callable[[BaseException], bool]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> object:
    """Run ``fn`` under ``policy``; return its result.

    Only exceptions in ``retry_on`` are retried — anything else
    propagates immediately (a deterministic failure retried N times is
    just N failures).  ``should_retry(exc)`` may veto individual
    instances (e.g. retry 5xx but not 4xx on a shared exception type).
    ``retry_after(exc)`` may return a server-suggested delay (e.g. a
    429's ``Retry-After``) which then replaces the backoff delay for
    that retry, still clamped by the remaining deadline.  Exhausting
    attempts or the deadline raises :class:`RetryBudgetExhausted`
    chained to the last error.
    """
    started = clock()
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if should_retry is not None and not should_retry(exc):
                raise
            elapsed = clock() - started
            if attempt >= policy.max_attempts - 1:
                raise RetryBudgetExhausted(
                    f"{describe} failed after {attempt + 1} attempts "
                    f"({elapsed:.2f}s): {exc}",
                    attempts=attempt + 1, elapsed=elapsed, last_error=exc,
                ) from exc
            pause = policy.delay(attempt, key=key)
            if retry_after is not None:
                suggested = retry_after(exc)
                if suggested is not None:
                    pause = max(0.0, float(suggested))
            if policy.deadline is not None:
                remaining = policy.deadline - elapsed
                if remaining <= pause:
                    raise RetryBudgetExhausted(
                        f"{describe} exceeded its {policy.deadline}s retry "
                        f"deadline after {attempt + 1} attempts: {exc}",
                        attempts=attempt + 1, elapsed=elapsed, last_error=exc,
                    ) from exc
            if on_retry is not None:
                on_retry(attempt, exc, pause)
            if pause > 0:
                sleep(pause)
            attempt += 1
