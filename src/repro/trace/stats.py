"""Per-trace statistics in the format of the paper's Table II / III.

Table II reports, per benchmark: number of tasks, total work (ms),
average task size (µs) and the range of the number of dependencies
(parameters) per task.  :func:`compute_statistics` regenerates those
columns for any trace, plus a few extra quantities (critical path,
maximum parallelism) that the analysis layer uses to plot ideal curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.trace.dag import DependencyGraph, build_dependency_graph
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of a trace, mirroring a row of the paper's Table II."""

    name: str
    num_tasks: int
    total_work_ms: float
    avg_task_us: float
    min_params: int
    max_params: int
    min_deps: int
    max_deps: int
    num_barriers: int
    critical_path_ms: float
    max_parallelism: float

    @property
    def deps_label(self) -> str:
        """Dependency-count column formatted like the paper ("1-3", "2-6")."""
        if self.min_params == self.max_params:
            return str(self.max_params)
        return f"{self.min_params}-{self.max_params}"

    def as_table_row(self) -> tuple:
        """Row matching Table II's columns: (#tasks, work ms, avg µs, #deps)."""
        return (self.name, self.num_tasks, round(self.total_work_ms), round(self.avg_task_us, 1), self.deps_label)


def compute_statistics(trace: Trace, *, graph: Optional[DependencyGraph] = None) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace``.

    Parameters
    ----------
    trace:
        The trace to summarise.
    graph:
        Optional pre-built dependency graph (avoids recomputing it when
        the caller already has one).
    """
    graph = graph or build_dependency_graph(trace)
    num_tasks = trace.num_tasks
    total_us = trace.total_work_us
    min_params, max_params = trace.param_count_range()
    min_deps, max_deps = graph.dependency_count_range()
    critical_us = graph.critical_path_length()
    return TraceStatistics(
        name=trace.name,
        num_tasks=num_tasks,
        total_work_ms=total_us / 1000.0,
        avg_task_us=total_us / num_tasks if num_tasks else 0.0,
        min_params=min_params,
        max_params=max_params,
        min_deps=min_deps,
        max_deps=max_deps,
        num_barriers=trace.num_barriers,
        critical_path_ms=critical_us / 1000.0,
        max_parallelism=graph.max_parallelism(),
    )
