"""Tests for the set-associative address table."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.taskgraph.address_state import AccessMode
from repro.taskgraph.table import AddressTable


class TestGeometry:
    def test_set_index_is_stable_and_in_range(self):
        table = AddressTable(num_sets=64, ways=4)
        for address in (0x0, 0x1000, 0xDEADBEEF, (1 << 48) - 64):
            idx = table.set_index(address)
            assert 0 <= idx < 64
            assert idx == table.set_index(address)

    def test_capacity(self):
        assert AddressTable(num_sets=16, ways=4).capacity_entries == 64

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressTable(num_sets=100, ways=4)

    def test_invalid_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressTable(num_sets=16, ways=0)


class TestInsertAndFinish:
    def test_insert_then_finish_evicts_entry(self):
        table = AddressTable(num_sets=16, ways=2)
        must_wait, conflict = table.insert_access(0x40, 1, AccessMode.WRITE)
        assert (must_wait, conflict) == (False, False)
        assert table.live_entries == 1
        table.finish_access(0x40, 1)
        assert table.live_entries == 0
        assert table.stats.evictions == 1

    def test_dependent_task_waits(self):
        table = AddressTable()
        table.insert_access(0x40, 1, AccessMode.WRITE)
        must_wait, _ = table.insert_access(0x40, 2, AccessMode.READ)
        assert must_wait is True

    def test_finish_returns_kicked_waiters(self):
        table = AddressTable()
        table.insert_access(0x40, 1, AccessMode.WRITE)
        table.insert_access(0x40, 2, AccessMode.READ)
        released = table.finish_access(0x40, 1)
        assert [w.task_id for w in released] == [2]

    def test_finish_untracked_address_raises(self):
        with pytest.raises(SimulationError):
            AddressTable().finish_access(0x40, 1)

    def test_set_conflict_detected(self):
        table = AddressTable(num_sets=1, ways=2)
        # Three distinct addresses in the single set: third insert conflicts.
        assert table.insert_access(0x40, 1, AccessMode.WRITE)[1] is False
        assert table.insert_access(0x80, 2, AccessMode.WRITE)[1] is False
        assert table.insert_access(0xC0, 3, AccessMode.WRITE)[1] is True
        assert table.stats.set_conflicts == 1

    def test_conflict_entry_is_still_tracked(self):
        table = AddressTable(num_sets=1, ways=1)
        table.insert_access(0x40, 1, AccessMode.WRITE)
        table.insert_access(0x80, 2, AccessMode.WRITE)
        # Functional behaviour unaffected: dependencies on the overflowing
        # address still resolve.
        must_wait, _ = table.insert_access(0x80, 3, AccessMode.READ)
        assert must_wait is True

    def test_occupancy_released_on_eviction(self):
        table = AddressTable(num_sets=1, ways=2)
        table.insert_access(0x40, 1, AccessMode.WRITE)
        set_idx = table.set_index(0x40)
        assert table.set_occupancy(set_idx) == 1
        table.finish_access(0x40, 1)
        assert table.set_occupancy(set_idx) == 0


class TestDummyEntries:
    def test_long_kickoff_list_consumes_extra_ways(self):
        table = AddressTable(num_sets=4, ways=8, kickoff_capacity=2)
        table.insert_access(0x40, 0, AccessMode.WRITE)
        for task in range(1, 6):  # 5 waiters, capacity 2 -> 2 dummy entries
            table.insert_access(0x40, task, AccessMode.WRITE)
        assert table.ways_used(0x40) == 3
        assert table.stats.dummy_entries_peak >= 2

    def test_unbounded_waiters_supported(self):
        # The Gaussian-elimination property: any number of tasks may wait
        # on one address (dummy-entry chaining), the structure never fails.
        table = AddressTable(num_sets=4, ways=2, kickoff_capacity=4)
        table.insert_access(0x40, 0, AccessMode.WRITE)
        for task in range(1, 300):
            must_wait, _ = table.insert_access(0x40, task, AccessMode.READ)
            assert must_wait is True
        released = table.finish_access(0x40, 0)
        assert len(released) == 299

    def test_reset(self):
        table = AddressTable()
        table.insert_access(0x40, 1, AccessMode.WRITE)
        table.reset()
        assert table.live_entries == 0
        assert table.stats.insertions == 0
