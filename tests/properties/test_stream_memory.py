"""Bounded-memory property of the streaming pipeline.

The contract (docs/streaming.md): with ``keep_schedule=False``, live
state of generator + machine is O(in-flight window), never O(total
tasks).  The test simulates a 100k-task synthetic stream under a fixed
``tracemalloc`` ceiling — far below what materialising the same trace
allocates — and checks the ceiling is *scale-invariant* by comparing
two stream lengths.
"""

from __future__ import annotations

import tracemalloc

from repro.managers.ideal import IdealManager
from repro.system.machine import simulate_stream
from repro.workloads.synthetic import stream_fork_join

#: Python-heap peak allowed for streaming a 100k-task trace (bytes).
#: Measured headroom is ~10x: the streaming run peaks around 2 MB.
STREAM_HEAP_CEILING = 24 * 1024 * 1024

#: Fork-join geometry: width 250 + 1 reduce per phase.
WIDTH = 250


def _stream(num_phases: int):
    return stream_fork_join(num_phases, WIDTH, duration_us=20.0, seed=2015)


def _peak_bytes(num_phases: int) -> tuple[int, int]:
    """(traced peak bytes, tasks simulated) for one streaming run."""
    tracemalloc.start()
    result = simulate_stream(_stream(num_phases), IdealManager(), 16, max_in_flight=2048)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, result.num_tasks


def test_100k_task_stream_stays_under_fixed_heap_ceiling():
    num_phases = 400  # 400 * 251 = 100_400 tasks
    peak, num_tasks = _peak_bytes(num_phases)
    assert num_tasks == num_phases * (WIDTH + 1)
    assert peak < STREAM_HEAP_CEILING, (
        f"streaming a {num_tasks}-task trace peaked at {peak / 1e6:.1f} MB "
        f"(ceiling {STREAM_HEAP_CEILING / 1e6:.1f} MB) — the streaming path "
        "is materialising per-task state"
    )


def test_stream_peak_is_scale_invariant():
    """10x more tasks must not move the heap peak materially."""
    small_peak, _ = _peak_bytes(10)     # ~2.5k tasks
    large_peak, _ = _peak_bytes(100)    # ~25k tasks
    # Allow slack for allocator noise, but forbid anything resembling
    # linear growth (10x tasks -> would be ~10x peak if state leaked).
    assert large_peak < max(2 * small_peak, small_peak + 4 * 1024 * 1024), (
        f"peak grew from {small_peak / 1e6:.2f} MB to {large_peak / 1e6:.2f} MB "
        "with 10x the tasks — per-task state is not being retired"
    )


def test_materialised_trace_dwarfs_streaming_peak():
    """Sanity anchor: materialising even a 25k-task prefix costs more
    Python heap than streaming it end to end."""
    from repro.trace.stream import materialize

    num_phases = 100
    tracemalloc.start()
    trace = materialize(_stream(num_phases))
    _, materialise_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert trace.num_tasks == num_phases * (WIDTH + 1)

    stream_peak, _ = _peak_bytes(num_phases)
    assert stream_peak < materialise_peak / 3, (
        f"streaming peak {stream_peak / 1e6:.2f} MB vs materialise peak "
        f"{materialise_peak / 1e6:.2f} MB — expected a wide margin"
    )
