"""Tests for SerialResource and MultiResource."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.resource import MultiResource, SerialResource


class TestSerialResource:
    def test_first_reservation_starts_at_earliest(self):
        r = SerialResource("unit")
        start, end = r.reserve(5.0, 2.0)
        assert (start, end) == (5.0, 7.0)

    def test_back_to_back_reservations_queue(self):
        r = SerialResource("unit")
        r.reserve(0.0, 10.0)
        start, end = r.reserve(2.0, 3.0)
        assert start == pytest.approx(10.0)
        assert end == pytest.approx(13.0)

    def test_idle_gap_is_allowed(self):
        r = SerialResource("unit")
        r.reserve(0.0, 1.0)
        start, _ = r.reserve(100.0, 1.0)
        assert start == pytest.approx(100.0)

    def test_zero_duration_reservation(self):
        r = SerialResource("unit")
        start, end = r.reserve(1.0, 0.0)
        assert start == end == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            SerialResource("unit").reserve(0.0, -1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SerialResource("unit").reserve(-1.0, 1.0)

    def test_peek_start_does_not_reserve(self):
        r = SerialResource("unit")
        r.reserve(0.0, 5.0)
        assert r.peek_start(1.0) == pytest.approx(5.0)
        assert r.next_free == pytest.approx(5.0)

    def test_stats_accumulate(self):
        r = SerialResource("unit")
        r.reserve(0.0, 2.0)
        r.reserve(0.0, 2.0)  # waits 2
        assert r.stats.reservations == 2
        assert r.stats.busy_time == pytest.approx(4.0)
        assert r.stats.total_wait == pytest.approx(2.0)
        assert r.stats.mean_service_time == pytest.approx(2.0)
        assert r.stats.mean_wait == pytest.approx(1.0)

    def test_utilization(self):
        r = SerialResource("unit")
        r.reserve(0.0, 5.0)
        assert r.stats.utilization(10.0) == pytest.approx(0.5)
        assert r.stats.utilization(0.0) == 0.0

    def test_reset(self):
        r = SerialResource("unit")
        r.reserve(0.0, 5.0)
        r.reset()
        assert r.next_free == 0.0
        assert r.stats.reservations == 0


class TestMultiResource:
    def test_parallel_servers(self):
        pool = MultiResource("cores", 2)
        s1, e1, i1 = pool.reserve(0.0, 10.0)
        s2, e2, i2 = pool.reserve(0.0, 10.0)
        assert s1 == s2 == 0.0
        assert i1 != i2

    def test_third_reservation_waits_for_first_free(self):
        pool = MultiResource("cores", 2)
        pool.reserve(0.0, 10.0)
        pool.reserve(0.0, 4.0)
        start, end, _ = pool.reserve(0.0, 1.0)
        assert start == pytest.approx(4.0)
        assert end == pytest.approx(5.0)

    def test_earliest_available(self):
        pool = MultiResource("cores", 2)
        pool.reserve(0.0, 10.0)
        assert pool.earliest_available() == 0.0
        pool.reserve(0.0, 6.0)
        assert pool.earliest_available() == pytest.approx(6.0)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            MultiResource("cores", 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            MultiResource("cores", 1).reserve(0.0, -1.0)

    def test_utilization(self):
        pool = MultiResource("cores", 2)
        pool.reserve(0.0, 10.0)
        assert pool.utilization(10.0) == pytest.approx(0.5)

    def test_reset(self):
        pool = MultiResource("cores", 2)
        pool.reserve(0.0, 10.0)
        pool.reset()
        assert pool.earliest_available() == 0.0
