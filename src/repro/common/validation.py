"""Small argument-validation helpers.

These helpers raise :class:`repro.common.errors.ConfigurationError` with a
consistent message format, so configuration dataclasses across the code
base validate their fields the same way.
"""

from __future__ import annotations

from typing import Union

from repro.common.errors import ConfigurationError

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Ensure ``value`` is strictly positive; return it for chaining."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Ensure ``value`` is >= 0; return it for chaining."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: Number) -> Number:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Ensure ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value!r}")
    return value


def check_in_range(name: str, value: Number, low: Number, high: Number) -> Number:
    """Ensure ``low <= value <= high``."""
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_choice(name: str, value: object, choices: tuple) -> object:
    """Ensure ``value`` is one of ``choices``."""
    if value not in choices:
        raise ConfigurationError(f"{name} must be one of {choices!r}, got {value!r}")
    return value
