"""Standard manager configurations used by the experiments.

A *factory* is a zero-argument callable returning a fresh manager
instance; the scalability sweeps construct one manager per (trace, core
count) combination so that runs never share internal state.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError
from repro.managers.base import TaskManagerModel
from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosConfig, NanosManager
from repro.managers.software import VandierendonckManager
from repro.nexus.nexuspp import NexusPlusPlusConfig, NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.nexus.timing import NexusPlusPlusTiming, NexusSharpTiming

ManagerFactory = Callable[[], TaskManagerModel]


def ideal_factory() -> ManagerFactory:
    """The paper's "No Overhead" configuration."""
    return IdealManager


def nanos_factory(config: Optional[NanosConfig] = None) -> ManagerFactory:
    """The Nanos software-runtime model."""
    return lambda: NanosManager(config)


def vandierendonck_factory() -> ManagerFactory:
    """The optimistic 400-cycles-per-task software manager of [17]."""
    return VandierendonckManager


def nexus_pp_factory(
    frequency_mhz: float = 100.0,
    *,
    tightly_coupled: bool = False,
) -> ManagerFactory:
    """Nexus++ at the given frequency (100 MHz on the ZC706)."""

    def build() -> TaskManagerModel:
        timing = NexusPlusPlusTiming.tightly_coupled() if tightly_coupled else NexusPlusPlusTiming()
        return NexusPlusPlusManager(NexusPlusPlusConfig(frequency_mhz=frequency_mhz, timing=timing))

    return build


def nexus_sharp_factory(
    num_task_graphs: int = 6,
    frequency_mhz: Optional[float] = None,
    *,
    tightly_coupled: bool = False,
) -> ManagerFactory:
    """Nexus# with ``num_task_graphs`` task graphs.

    ``frequency_mhz=None`` selects the Table I synthesis frequency for the
    configuration (the paper's Figure 7(b) / Figure 8 setting); pass an
    explicit ``100.0`` for the flat-frequency study of Figure 7(a).
    """

    def build() -> TaskManagerModel:
        timing = NexusSharpTiming.tightly_coupled() if tightly_coupled else NexusSharpTiming()
        return NexusSharpManager(
            NexusSharpConfig(
                num_task_graphs=num_task_graphs,
                frequency_mhz=frequency_mhz,
                timing=timing,
            )
        )

    return build


def paper_manager_set(
    *,
    nexus_sharp_task_graphs: int = 6,
    include_ideal: bool = True,
) -> Dict[str, ManagerFactory]:
    """The manager line-up of Figure 8: Ideal, Nanos, Nexus++, Nexus# 6 TG.

    Nexus# runs at its synthesis frequency (55.56 MHz for 6 task graphs),
    Nexus++ at 100 MHz, matching the paper's experimental setup.
    """
    managers: Dict[str, ManagerFactory] = {}
    if include_ideal:
        managers["Ideal"] = ideal_factory()
    managers["Nanos"] = nanos_factory()
    managers["Nexus++"] = nexus_pp_factory()
    managers[f"Nexus# {nexus_sharp_task_graphs}TG"] = nexus_sharp_factory(nexus_sharp_task_graphs)
    return managers


def make_manager(name: str) -> TaskManagerModel:
    """Construct a manager from a short textual name (used by the CLI).

    Recognised names: ``ideal``, ``nanos``, ``sw400``, ``nexus++``,
    ``nexus#<n>`` (e.g. ``nexus#6``), ``nexus#<n>@<MHz>``.
    """
    token = name.strip().lower()
    if token == "ideal":
        return IdealManager()
    if token == "nanos":
        return NanosManager()
    if token == "sw400":
        return VandierendonckManager()
    if token in ("nexus++", "nexuspp"):
        return NexusPlusPlusManager()
    if token.startswith("nexus#"):
        spec = token[len("nexus#"):]
        frequency: Optional[float] = None
        if "@" in spec:
            spec, freq_text = spec.split("@", 1)
            frequency = float(freq_text)
        num_tg = int(spec) if spec else 6
        return NexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg, frequency_mhz=frequency))
    raise ConfigurationError(
        f"unknown manager name {name!r}; expected ideal, nanos, sw400, nexus++ or nexus#<n>[@MHz]"
    )
