"""Hypothesis-driven scalar-vs-batch differential verification.

Random :class:`~repro.workloads.fuzz.FuzzSpec` configurations are
elaborated to static traces and run through both engines — the scalar
oracle (``Machine.run``) and the vectorized batch backend
(:func:`repro.sim.batch.run_lanes`) — under the golden managers.  The
two engines must agree **byte-for-byte** on the entire result: makespan,
per-task submit/ready/start/finish times, core assignments (the
observable image of the ready/dispatch order), manager table statistics
and per-core busy accounting.

The CI workflow selects the ``ci`` hypothesis profile (registered in
``tests/conftest.py``: derandomized, bounded examples, no deadline), so
these tests are exactly reproducible across CI runs.  A failing example
here is a new regression case to pin in ``batch_corpus.py``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.batch import LaneSpec, lane_fallback_reason, run_lanes
from repro.system.machine import Machine, MachineConfig
from repro.workloads.fuzz import FuzzSpec, fuzz_program

from batch_manager_factories import BATCH_TEST_MANAGERS, KERNEL_MANAGERS


@st.composite
def fuzz_specs(draw) -> FuzzSpec:
    """Random fuzzer configurations, bounded for test runtime."""
    return FuzzSpec(
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        max_depth=draw(st.integers(min_value=0, max_value=4)),
        max_children=draw(st.integers(min_value=0, max_value=4)),
        roots=draw(st.integers(min_value=1, max_value=6)),
        conflict_density=draw(st.floats(min_value=0.0, max_value=1.0)),
        inout_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        join_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        mid_taskwait_probability=draw(st.floats(min_value=0.0, max_value=0.5)),
        master_barrier_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
        duration_range_us=(0.0, draw(st.floats(min_value=0.5, max_value=30.0))),
        max_tasks=draw(st.integers(min_value=8, max_value=150)),
        recurse_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
    )


def assert_identical(scalar, batch, context: str) -> None:
    """Field-wise byte-identity, with a readable message per field."""
    for field in (
        "makespan_us", "master_finish_us", "core_busy_us", "per_core_busy_us",
        "submit_times", "ready_times", "start_times", "finish_times",
        "task_cores", "manager_stats", "num_tasks", "total_work_us",
    ):
        assert getattr(scalar, field) == getattr(batch, field), (
            f"{context}: batch {field} diverged from the scalar oracle"
        )
    assert scalar == batch, f"{context}: full results differ"


@given(spec=fuzz_specs(),
       cores=st.integers(min_value=1, max_value=6),
       manager_key=st.sampled_from(sorted(BATCH_TEST_MANAGERS)))
@settings(max_examples=30, deadline=None)
def test_single_lane_matches_scalar_oracle(spec, cores, manager_key):
    """One lane through run_lanes == Machine.run, bit for bit."""
    factory = BATCH_TEST_MANAGERS[manager_key]
    trace = fuzz_program(spec).elaborate()
    config = MachineConfig(num_cores=cores, validate=True)

    scalar = Machine(factory(), config).run(trace)
    (batch,) = run_lanes([LaneSpec(trace=trace, manager=factory(), config=config)])

    assert_identical(scalar, batch, f"{manager_key}/{cores}c seed={spec.seed}")


@given(spec=fuzz_specs(), cores=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_kernel_lanes_are_vectorized_not_fallback(spec, cores):
    """The ideal/nanos kernels must actually admit elaborated traces —
    otherwise the differential suite would silently test fallback
    against itself."""
    trace = fuzz_program(spec).elaborate()
    config = MachineConfig(num_cores=cores)
    for manager_key in KERNEL_MANAGERS:
        manager = BATCH_TEST_MANAGERS[manager_key]()
        assert lane_fallback_reason(trace, manager, config) is None


@given(specs=st.lists(fuzz_specs(), min_size=2, max_size=5, unique_by=lambda s: s.seed),
       manager_key=st.sampled_from(sorted(BATCH_TEST_MANAGERS)))
@settings(max_examples=15, deadline=None)
def test_multi_lane_batch_matches_solo_runs(specs, manager_key):
    """Lanes advanced in lockstep must equal their solo scalar runs:
    lane isolation is absolute, whatever mix of traces shares a batch."""
    factory = BATCH_TEST_MANAGERS[manager_key]
    traces = [fuzz_program(spec).elaborate() for spec in specs]
    configs = [
        MachineConfig(num_cores=1 + (index % 4), validate=True)
        for index in range(len(traces))
    ]
    scalars = [
        Machine(factory(), config).run(trace)
        for trace, config in zip(traces, configs)
    ]
    batch = run_lanes([
        LaneSpec(trace=trace, manager=factory(), config=config)
        for trace, config in zip(traces, configs)
    ])
    assert len(batch) == len(scalars)
    for index, (scalar, lane) in enumerate(zip(scalars, batch)):
        assert_identical(scalar, lane, f"{manager_key} lane {index}")
