"""Socketpair tests of send-side wire fault injection."""

from __future__ import annotations

import socket

import pytest

from repro.chaos.plan import FaultPlan
from repro.chaos.stream import ChaosFrameStream
from repro.distributed.protocol import FrameStream, ProtocolError


def pair(plan, scope="test"):
    left, right = socket.socketpair()
    return ChaosFrameStream(left, plan, scope), FrameStream(right)


PING = {"type": "ping", "n": 1}


class TestWireFaults:
    def test_clean_plan_passes_frames_through(self):
        sender, receiver = pair(FaultPlan(0, "none"))
        sender.send(PING)
        assert receiver.recv(timeout=5) == PING
        assert sender.injected == {}
        sender.close(), receiver.close()

    def test_drop_loses_the_frame(self):
        sender, receiver = pair(FaultPlan(0, "none", frame_drop_rate=1.0))
        sender.send(PING)
        assert sender.injected == {"drop": 1}
        sender.close()  # EOF is the only thing the peer ever sees
        assert receiver.recv(timeout=5) is None
        receiver.close()

    def test_duplicate_delivers_the_frame_twice(self):
        sender, receiver = pair(FaultPlan(0, "none", frame_duplicate_rate=1.0))
        sender.send(PING)
        assert receiver.recv(timeout=5) == PING
        assert receiver.recv(timeout=5) == PING
        assert sender.injected == {"duplicate": 1}
        sender.close(), receiver.close()

    def test_corrupt_surfaces_as_protocol_error(self):
        sender, receiver = pair(FaultPlan(0, "none", frame_corrupt_rate=1.0))
        sender.send(PING)
        with pytest.raises(ProtocolError):
            receiver.recv(timeout=5)
        assert sender.injected == {"corrupt": 1}
        sender.close(), receiver.close()

    def test_delay_still_delivers(self):
        plan = FaultPlan(0, "none", frame_delay_rate=1.0, frame_delay_s=0.01)
        sender, receiver = pair(plan)
        sender.send(PING)
        assert receiver.recv(timeout=5) == PING
        assert sender.injected == {"delay": 1}
        sender.close(), receiver.close()

    def test_truncate_is_a_mid_frame_eof_for_the_peer(self):
        sender, receiver = pair(FaultPlan(0, "none", frame_truncate_rate=1.0))
        with pytest.raises(ConnectionResetError):
            sender.send(PING)
        with pytest.raises(ProtocolError, match="mid-frame"):
            receiver.recv(timeout=5)
        assert sender.injected == {"truncate": 1}
        receiver.close()

    def test_reset_severs_the_connection(self):
        plan = FaultPlan(0, "none", reset_after_frames=2, reset_rate=1.0)
        sender, receiver = pair(plan)
        sender.send(PING)
        sender.send(PING)
        with pytest.raises(ConnectionResetError):
            sender.send(PING)  # frame index 2 >= reset_after_frames
        assert receiver.recv(timeout=5) == PING
        assert receiver.recv(timeout=5) == PING
        assert receiver.recv(timeout=5) is None  # then clean EOF
        assert sender.injected == {"reset": 1}
        receiver.close()

    def test_fault_sequence_is_deterministic_per_stream(self):
        plan = FaultPlan(11, "none", frame_drop_rate=0.3,
                         frame_duplicate_rate=0.3)

        def run_one():
            sender, receiver = pair(plan, scope="det")
            for n in range(50):
                sender.send({"type": "ping", "n": n})
            counts = dict(sender.injected)
            sender.close(), receiver.close()
            return counts

        first, second = run_one(), run_one()
        assert first == second
        assert first.get("drop", 0) > 0 and first.get("duplicate", 0) > 0


class TestAdopt:
    def test_adopt_preserves_buffered_frames_and_identity(self):
        left, right = socket.socketpair()
        plain_sender = FrameStream(left)
        plain_receiver = FrameStream(right)
        plain_sender.send({"type": "a"})
        plain_sender.send({"type": "b"})
        assert plain_receiver.recv(timeout=5) == {"type": "a"}
        # Frame "b" now sits (at least partly) in the receive buffer.
        chaotic = ChaosFrameStream.adopt(plain_receiver, FaultPlan(0, "none"),
                                         "adopted")
        assert chaotic.recv(timeout=5) == {"type": "b"}
        assert chaotic.peer == plain_receiver.peer
        assert chaotic.scope == "adopted"
        assert chaotic._send_lock is plain_receiver._send_lock
        chaotic.close(), plain_sender.close()
