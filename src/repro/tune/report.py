"""The ``TuneReport`` JSONL artifact.

One canonical-JSON line per record, in search order:

* a ``header`` line — report version, search space, objective, budget;
* one ``rung`` line per ladder rung — units, cell accounting and the
  full ranked frontier;
* a ``best`` line — the winner with its score and metrics, plus the
  whole-search cell totals.

The format is append-streamable (like the sweep runner's JSONL) and
diff-stable: byte-identical for byte-identical searches, which is what
lets CI keep a committed tuning report under drift surveillance.
:mod:`repro.analysis.frontier` renders these documents as tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.common.errors import ConfigurationError
from repro.trace.serialization import canonical_json_line
from repro.tune.search import TuneResult

__all__ = ["TUNE_REPORT_VERSION", "TuneReport"]

TUNE_REPORT_VERSION = 1


class TuneReport:
    """Serialise a :class:`~repro.tune.search.TuneResult` to JSONL."""

    def __init__(self, result: TuneResult) -> None:
        if result.best is None:
            raise ConfigurationError("cannot report an unfinished search")
        self.result = result

    def documents(self) -> List[Dict[str, Any]]:
        """The report's records, in order (header, rungs, best)."""
        result = self.result
        header: Dict[str, Any] = {
            "type": "header",
            "version": TUNE_REPORT_VERSION,
            "space": result.space.describe(),
            "objective": result.objective_name,
            "eta": result.eta,
            "budget": result.budget,
        }
        documents: List[Dict[str, Any]] = [header]
        documents.extend(dict(rung.describe(), type="rung")
                         for rung in result.rungs)
        documents.append({
            "type": "best",
            "best": result.best.describe(),
            "budget_exhausted": result.budget_exhausted,
            "total_cells": result.total_cells,
            "total_executed": result.total_executed,
            "total_cache_hits": result.total_cache_hits,
        })
        return documents

    def lines(self) -> List[str]:
        """Canonical JSONL lines (no trailing newlines)."""
        return [canonical_json_line(document) for document in self.documents()]

    def write(self, path: Union[str, Path]) -> Path:
        """Write the report to ``path``, creating parent directories."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(line + "\n" for line in self.lines()),
                        encoding="utf-8")
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> Dict[str, Any]:
        """Parse a report file into ``{header, rungs, best}``."""
        header: Dict[str, Any] = {}
        rungs: List[Dict[str, Any]] = []
        best: Dict[str, Any] = {}
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            document = json.loads(line)
            kind = document.get("type")
            if kind == "header":
                header = document
            elif kind == "rung":
                rungs.append(document)
            elif kind == "best":
                best = document
            else:
                raise ConfigurationError(
                    f"unknown tune-report record type {kind!r} in {path}")
        if not header or not best:
            raise ConfigurationError(f"{path} is not a complete tune report")
        return {"header": header, "rungs": rungs, "best": best}
