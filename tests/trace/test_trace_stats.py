"""Tests for trace statistics (Table II columns)."""

import pytest

from repro.trace.stats import compute_statistics
from repro.trace.trace import TraceBuilder
from repro.workloads.synthetic import generate_fork_join, generate_independent


class TestComputeStatistics:
    def test_basic_columns(self):
        builder = TraceBuilder("stats")
        builder.add_task("a", 1000.0, outputs=[0x1])
        builder.add_task("b", 3000.0, inputs=[0x1], outputs=[0x2])
        builder.add_taskwait()
        stats = compute_statistics(builder.build())
        assert stats.num_tasks == 2
        assert stats.total_work_ms == pytest.approx(4.0)
        assert stats.avg_task_us == pytest.approx(2000.0)
        assert stats.num_barriers == 1
        assert stats.min_params == 1
        assert stats.max_params == 2

    def test_deps_label_single_value(self):
        stats = compute_statistics(generate_independent(5, seed=0))
        assert stats.deps_label == "1"

    def test_deps_label_range(self):
        builder = TraceBuilder("range")
        builder.add_task("a", 1.0, outputs=[0x1])
        builder.add_task("b", 1.0, inputs=[0x1], inouts=[0x2], outputs=[0x3])
        stats = compute_statistics(builder.build())
        assert stats.deps_label == "1-3"

    def test_max_parallelism_independent(self):
        stats = compute_statistics(generate_independent(16, duration_us=5.0, seed=0))
        assert stats.max_parallelism == pytest.approx(16.0)

    def test_critical_path_fork_join(self):
        trace = generate_fork_join(2, 4, duration_us=10.0, seed=0)
        stats = compute_statistics(trace)
        # Each phase: parallel work (10) followed by a reduce task (10).
        assert stats.critical_path_ms == pytest.approx(0.04)

    def test_as_table_row(self):
        stats = compute_statistics(generate_independent(3, duration_us=100.0, seed=0))
        row = stats.as_table_row()
        assert row[0] == "synthetic-independent"
        assert row[1] == 3

    def test_empty_trace(self):
        builder = TraceBuilder("empty")
        builder.add_taskwait()
        stats = compute_statistics(builder.build())
        assert stats.num_tasks == 0
        assert stats.avg_task_us == 0.0
