"""Plain-text rendering of tables and speedup series.

The reproduction prints its results as aligned text tables (the benchmark
harness pipes them into ``bench_output.txt``), so no plotting dependency
is needed.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, value in enumerate(row):
            if index >= len(widths):
                widths.extend([0] * (index + 1 - len(widths)))
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)).rstrip())
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_speedup_series(
    title: str,
    core_counts: Sequence[int],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render one figure panel: one column per core count, one row per manager."""
    headers = ["manager"] + [f"{c} cores" for c in core_counts]
    rows = []
    for name, values in series.items():
        rows.append([name] + [f"{v:.2f}x" for v in values])
    return render_table(headers, rows, title=title)
