"""Tests for SweepSpec / RunPoint / WorkloadSpec."""

import pickle

import pytest

from repro.analysis.factories import NexusSharpFactory, nexus_sharp_factory, paper_manager_set
from repro.common.errors import ConfigurationError
from repro.experiments.spec import RunPoint, SweepSpec, WorkloadSpec
from repro.workloads.synthetic import generate_independent


class TestWorkloadSpec:
    def test_named_workload_resolves_through_registry(self):
        spec = WorkloadSpec.of("microbench")
        trace = spec.resolve()
        assert trace.num_tasks == 5
        assert spec.describe() == {"name": "microbench", "scale": 1.0, "seed": None}

    def test_inline_trace_is_content_addressed(self):
        trace = generate_independent(6, duration_us=10.0, seed=3)
        spec = WorkloadSpec.of(trace)
        assert spec.resolve() is trace
        description = spec.describe()
        assert description["name"] == trace.name
        assert len(description["inline_digest"]) == 64
        # Same content, same digest; different content, different digest.
        same = WorkloadSpec.of(generate_independent(6, duration_us=10.0, seed=3))
        other = WorkloadSpec.of(generate_independent(7, duration_us=10.0, seed=3))
        assert same.describe() == description
        assert other.describe() != description

    def test_with_seed_only_touches_named_workloads(self):
        named = WorkloadSpec.of("c-ray", scale=0.05)
        assert named.with_seed(7).seed == 7
        assert named.with_seed(None).seed is None
        inline = WorkloadSpec.of(generate_independent(4, seed=1))
        assert inline.with_seed(7) is inline

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.of(42)


class TestManagerParsing:
    def test_malformed_nexus_specs_raise_configuration_error(self):
        from repro.analysis.factories import parse_manager

        for bad in ("nexus#six", "nexus#6@fast", "nexus#@", "nexus#1.5"):
            with pytest.raises(ConfigurationError, match="malformed manager name"):
                parse_manager(bad)


class TestSweepSpec:
    def test_grid_enumeration_order_is_deterministic(self):
        spec = SweepSpec(
            workloads=["microbench", "c-ray"],
            managers=["ideal", "nexus#2"],
            core_counts=[1, 4],
            scale=0.05,
        )
        points = list(spec.points())
        assert len(points) == 8 == spec.num_points()
        labels = [(p.workload.name, p.manager_name, p.cores) for p in points]
        assert labels[:4] == [
            ("microbench", "Ideal", 1),
            ("microbench", "Ideal", 4),
            ("microbench", "Nexus# 2TG", 1),
            ("microbench", "Nexus# 2TG", 4),
        ]
        assert labels == [(p.workload.name, p.manager_name, p.cores) for p in spec.points()]

    def test_manager_mapping_input_preserves_display_names(self):
        spec = SweepSpec(
            workloads=["microbench"], managers=paper_manager_set(), core_counts=[1]
        )
        assert [name for name, _ in spec.managers] == ["Ideal", "Nanos", "Nexus++", "Nexus# 6TG"]

    def test_max_cores_caps_filter_points(self):
        spec = SweepSpec(
            workloads=["microbench"],
            managers=["ideal", "nanos"],
            core_counts=[1, 8, 32],
            max_cores={"Nanos": 8},
        )
        nanos_cores = [p.cores for p in spec.points() if p.manager_name == "Nanos"]
        assert nanos_cores == [1, 8]

    def test_seed_axis_multiplies_named_workloads(self):
        spec = SweepSpec(
            workloads=["microbench"], managers=["ideal"], core_counts=[1], seeds=(1, 2)
        )
        seeds = [p.workload.seed for p in spec.points()]
        assert seeds == [1, 2]

    def test_seed_axis_does_not_duplicate_inline_traces(self):
        trace = generate_independent(6, duration_us=10.0, seed=3)
        spec = SweepSpec(
            workloads=(trace,), managers=["ideal"], core_counts=[1, 2], seeds=(1, 2, 3)
        )
        # The seed axis cannot affect an inline trace: one copy of the grid.
        assert spec.num_points() == 2
        mixed = SweepSpec(
            workloads=(trace, "microbench"), managers=["ideal"], core_counts=[1], seeds=(1, 2)
        )
        labels = [(p.workload.name, p.workload.seed) for p in mixed.points()]
        assert labels == [(trace.name, None), ("microbench", 1), ("microbench", 2)]

    def test_repeated_seed_values_are_deduplicated(self):
        spec = SweepSpec(
            workloads=["microbench"], managers=["ideal"], core_counts=[1], seeds=(7, 7)
        )
        assert spec.num_points() == 1

    def test_dataclasses_replace_round_trips(self):
        import dataclasses

        spec = SweepSpec(
            workloads=["microbench"],
            managers=["ideal", "nexus#2"],
            core_counts=[1, 2],
            max_cores={"Ideal": 1},
        )
        renamed = dataclasses.replace(spec, name="renamed")
        assert renamed.name == "renamed"
        assert renamed.managers == spec.managers
        assert renamed.max_cores == spec.max_cores
        assert renamed.spec_hash() == spec.spec_hash()
        assert [p.cache_key() for p in renamed.points()] == [p.cache_key() for p in spec.points()]

    def test_spec_hash_is_stable_and_sensitive(self):
        def build(cores):
            return SweepSpec(
                workloads=["microbench"], managers=["ideal"], core_counts=cores
            )

        assert build([1, 2]).spec_hash() == build([1, 2]).spec_hash()
        assert build([1, 2]).spec_hash() != build([1, 4]).spec_hash()

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(workloads=[], managers=["ideal"], core_counts=[1])
        with pytest.raises(ConfigurationError):
            SweepSpec(workloads=["microbench"], managers=[], core_counts=[1])
        with pytest.raises(ConfigurationError):
            SweepSpec(workloads=["microbench"], managers=["ideal"], core_counts=[])
        with pytest.raises(ConfigurationError):
            SweepSpec(workloads=["microbench"], managers=["ideal"], core_counts=[0])
        with pytest.raises(ConfigurationError):
            SweepSpec(workloads=["microbench"], managers=["ideal"], core_counts=[1], seeds=())
        with pytest.raises(ConfigurationError):
            SweepSpec(
                workloads=["microbench"], managers=["ideal", "ideal"], core_counts=[1]
            )


class TestRunPoint:
    def _point(self, **overrides):
        defaults = dict(
            workload=WorkloadSpec.of("microbench"),
            manager_name="Nexus# 2TG",
            factory=NexusSharpFactory(num_task_graphs=2),
            cores=4,
        )
        defaults.update(overrides)
        return RunPoint(**defaults)

    def test_cache_key_changes_with_manager_configuration(self):
        base = self._point()
        same = self._point()
        retuned = self._point(factory=NexusSharpFactory(num_task_graphs=2, frequency_mhz=100.0))
        assert base.cache_key() == same.cache_key()
        assert base.cache_key() != retuned.cache_key()
        assert base.cache_key() != self._point(cores=8).cache_key()

    def test_run_executes_the_simulation(self):
        result = self._point(cores=2).run()
        assert result.trace_name == "microbench-independent"
        assert result.num_cores == 2
        assert result.makespan_us > 0

    def test_points_pickle(self):
        point = self._point()
        clone = pickle.loads(pickle.dumps(point))
        assert clone.cache_key() == point.cache_key()
        assert clone.run().makespan_us == point.run().makespan_us

    def test_factory_sweep_helper_equivalence(self):
        # The convenience wrappers build the same picklable factories.
        assert nexus_sharp_factory(2) == NexusSharpFactory(num_task_graphs=2)
