"""Objective scoring: geomean aggregation, area normalisation, registry."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.fpga.resources import estimate_nexus_sharp
from repro.system.results import MachineResult
from repro.tune.objectives import OBJECTIVES, geomean, parse_objective
from repro.tune.space import SearchSpace


def result(makespan_us: float, total_work_us: float) -> MachineResult:
    return MachineResult(
        trace_name="t", manager_name="m", num_cores=4,
        makespan_us=makespan_us, total_work_us=total_work_us, num_tasks=1)


def candidate_for(manager: str):
    space = SearchSpace(managers=(manager,), workloads=("microbench",))
    return space.candidates()[0]


class TestGeomean:
    def test_geomean_of_ratios(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_empty_and_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            geomean([])
        with pytest.raises(ConfigurationError):
            geomean([1.0, 0.0])


class TestMakespanObjective:
    def test_faster_scores_higher(self):
        objective = parse_objective("makespan")
        candidate = candidate_for("ideal")
        fast, _ = objective.evaluate(candidate, [result(100.0, 400.0)])
        slow, _ = objective.evaluate(candidate, [result(200.0, 400.0)])
        assert fast > slow

    def test_metrics_report_the_geomean(self):
        objective = parse_objective("makespan")
        _, metrics = objective.evaluate(
            candidate_for("ideal"), [result(100.0, 1.0), result(400.0, 1.0)])
        assert metrics["geomean_makespan_us"] == pytest.approx(200.0)


class TestSpeedupObjective:
    def test_score_is_geomean_speedup_vs_serial(self):
        objective = parse_objective("speedup")
        # Speedups 4.0 and 1.0 -> geomean 2.0 (the paper's definition:
        # total work / makespan).
        score, metrics = objective.evaluate(
            candidate_for("ideal"),
            [result(100.0, 400.0), result(100.0, 100.0)])
        assert score == pytest.approx(2.0)
        assert metrics["geomean_speedup"] == pytest.approx(2.0)


class TestAreaSpeedupObjective:
    def test_divides_speedup_by_the_area_fraction(self):
        objective = parse_objective("area-speedup")
        candidate = candidate_for("nexus#6")
        score, metrics = objective.evaluate(candidate, [result(100.0, 400.0)])
        area = estimate_nexus_sharp(6).area_fraction
        assert score == pytest.approx(4.0 / area)
        assert metrics["area_fraction"] == pytest.approx(area)

    def test_smaller_design_wins_at_equal_speedup(self):
        objective = parse_objective("area-speedup")
        rows = [result(100.0, 400.0)]
        small, _ = objective.evaluate(candidate_for("nexus#2"), rows)
        large, _ = objective.evaluate(candidate_for("nexus#8"), rows)
        assert small > large

    def test_software_managers_rejected_up_front(self):
        objective = parse_objective("area-speedup")
        with pytest.raises(ConfigurationError, match="hardware managers"):
            objective.validate(candidate_for("nanos"))
        # Hardware candidates validate silently.
        objective.validate(candidate_for("nexus++"))


class TestRegistry:
    def test_known_objectives(self):
        assert set(OBJECTIVES) == {"makespan", "speedup", "area-speedup"}

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            parse_objective("latency")

    def test_instances_pass_through(self):
        objective = parse_objective("speedup")
        assert parse_objective(objective) is objective
