"""The --dynamic / depths axes through the experiment layer."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.cli import main as cli_main
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec, WorkloadSpec
from repro.trace.serialization import iter_jsonl


def _spec(**kwargs):
    defaults = dict(
        workloads=["fib"],
        managers=["ideal"],
        core_counts=[2],
        depths=(5,),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSpecAxis:
    def test_dynamic_flag_reaches_every_point(self):
        spec = _spec(dynamic=True, managers=["ideal", "nexus#2"], core_counts=[1, 2])
        points = list(spec.points())
        assert len(points) == 4
        assert all(point.dynamic for point in points)

    def test_axes_recorded_only_when_set(self):
        plain = SweepSpec(workloads=["microbench"], managers=["ideal"], core_counts=[2])
        assert "dynamic" not in plain.describe()
        assert "depths" not in plain.describe()
        assert "dynamic" not in next(plain.points()).describe()
        assert "depth" not in next(plain.points()).describe()["workload"]
        dynamic = _spec(dynamic=True)
        assert dynamic.describe()["dynamic"] is True
        assert dynamic.describe()["depths"] == [5]
        point = next(dynamic.points())
        assert point.describe()["dynamic"] is True
        assert point.describe()["workload"]["depth"] == 5

    def test_spec_hash_stable_for_pre_axis_grids(self):
        # Adding the axes must not move hashes of pre-axis specs.
        plain = SweepSpec(workloads=["microbench"], managers=["ideal"], core_counts=[2])
        explicit = SweepSpec(workloads=["microbench"], managers=["ideal"],
                             core_counts=[2], dynamic=False, depths=(None,))
        assert plain.spec_hash() == explicit.spec_hash()

    def test_cache_keys_distinguish_dynamic_from_elaborated(self):
        elaborated = next(_spec().points())
        dynamic = next(_spec(dynamic=True).points())
        assert elaborated.cache_key() != dynamic.cache_key()

    def test_depth_axis_multiplies_dynamic_workloads_only(self):
        spec = SweepSpec(workloads=["fib"], managers=["ideal"], core_counts=[2],
                         depths=(5, 7))
        assert [w.depth for w in spec.effective_workloads()] == [5, 7]

    def test_depth_axis_rejected_when_it_affects_nothing(self):
        with pytest.raises(ConfigurationError, match="dynamic workloads only"):
            SweepSpec(workloads=["microbench"], managers=["ideal"],
                      core_counts=[2], depths=(5,))

    def test_depth_axis_in_mixed_sweeps_multiplies_dynamic_only(self):
        # Like seeds: the axis only multiplies workloads it affects.
        spec = SweepSpec(workloads=["fib", "microbench"], managers=["ideal"],
                         core_counts=[2], depths=(5, 7))
        effective = spec.effective_workloads()
        assert [(w.name, w.depth) for w in effective] == [
            ("fib", 5), ("fib", 7), ("microbench", None)]

    def test_dynamic_rejected_for_static_workloads(self):
        with pytest.raises(ConfigurationError, match="dynamic workloads"):
            SweepSpec(workloads=["microbench"], managers=["ideal"],
                      core_counts=[2], dynamic=True)

    def test_dynamic_rejects_max_tasks(self):
        with pytest.raises(ConfigurationError, match="max_tasks"):
            _spec(dynamic=True, max_tasks=10)

    def test_invalid_depths_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(depths=(0,))
        with pytest.raises(ConfigurationError):
            _spec(depths=())


class TestDynamicRuns:
    def test_dynamic_point_runs_and_differs_from_elaborated_replay(self):
        elaborated = next(_spec(managers=["nanos"]).points()).run()
        dynamic = next(_spec(managers=["nanos"], dynamic=True).points()).run()
        assert elaborated.num_tasks == dynamic.num_tasks
        # Same tasks, different regime: the spawning cores pay the
        # submission costs in the dynamic run, so timings diverge.
        assert elaborated.makespan_us != dynamic.makespan_us

    def test_dynamic_stream_selects_uncompiled_path_with_same_result(self):
        compiled = next(_spec(dynamic=True).points()).run()
        uncompiled = next(_spec(dynamic=True, stream=True).points()).run()
        assert compiled.makespan_us == uncompiled.makespan_us

    def test_stream_without_dynamic_replays_the_elaboration(self):
        """stream=True must never silently switch a cell onto the dynamic
        engine: it streams the serial elaboration, so its makespan equals
        the materialised replay's exactly (the stream-equivalence
        guarantee), regardless of unrelated knobs like max_tasks."""
        materialised = next(_spec(managers=["nanos"]).points()).run()
        streamed = next(_spec(managers=["nanos"], stream=True).points()).run()
        assert streamed.makespan_us == materialised.makespan_us
        dynamic = next(_spec(managers=["nanos"], dynamic=True).points()).run()
        assert streamed.makespan_us != dynamic.makespan_us
        # And a max_tasks cut behaves identically in both replay modes.
        cut = next(_spec(managers=["nanos"], max_tasks=20).points()).run()
        cut_streamed = next(
            _spec(managers=["nanos"], max_tasks=20, stream=True).points()).run()
        assert cut.num_tasks == cut_streamed.num_tasks == 20
        assert cut.makespan_us == cut_streamed.makespan_us

    def test_dynamic_points_cache_and_parallelise(self, tmp_path):
        spec = _spec(dynamic=True, managers=["ideal", "nexus#2"], core_counts=[1, 2])
        cold = SweepRunner(cache_dir=tmp_path / "cache").run(spec)
        warm = SweepRunner(cache_dir=tmp_path / "cache").run(spec)
        parallel = SweepRunner(n_jobs=2, cache_dir=tmp_path / "cache2").run(spec)
        assert cold.executed == 4 and warm.executed == 0 and warm.cache_hits == 4
        assert cold.jsonl_lines() == warm.jsonl_lines() == parallel.jsonl_lines()

    def test_workload_spec_resolve_dynamic(self):
        spec = WorkloadSpec(name="fib", seed=1, depth=5)
        assert spec.is_dynamic
        assert spec.resolve_dynamic().metadata["n"] == 5
        assert spec.resolve().num_tasks == spec.resolve_dynamic().elaborate().num_tasks
        static = WorkloadSpec(name="microbench")
        with pytest.raises(ConfigurationError):
            static.resolve_dynamic()


class TestCli:
    def test_dynamic_and_depths_flags(self, capsys, tmp_path):
        out = tmp_path / "rows.jsonl"
        code = cli_main([
            "sweep", "--workloads", "fib", "--managers", "ideal",
            "--cores", "2", "--dynamic", "--depths", "5", "6",
            "--seeds", "2015", "--output", str(out), "--quiet",
        ])
        assert code == 0
        assert "2 points" in capsys.readouterr().out
        rows = list(iter_jsonl(out))
        assert [row["point"]["workload"]["depth"] for row in rows] == [5, 6]
        assert all(row["point"]["dynamic"] is True for row in rows)
