"""Function-pointer table.

The Write-Back stage "reads the actual function pointer of the ready task
from the Function Pointers table ... and forwards it to the Nexus IO
unit" (Section IV-D).  In the reproduction, function pointers are simply
interned function-name strings; the table assigns each distinct name a
small integer id, which is what a hardware implementation would store.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import CapacityError, ConfigurationError


class FunctionTable:
    """Bidirectional mapping between function names and hardware ids."""

    def __init__(self, capacity: int = 256, name: str = "function-table") -> None:
        if capacity <= 0:
            raise ConfigurationError(f"{name}: capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._name_to_id: Dict[str, int] = {}
        self._id_to_name: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._name_to_id)

    def __contains__(self, function: str) -> bool:
        return function in self._name_to_id

    def intern(self, function: str) -> int:
        """Return the id of ``function``, allocating one if necessary."""
        existing = self._name_to_id.get(function)
        if existing is not None:
            return existing
        if len(self._name_to_id) >= self.capacity:
            raise CapacityError(
                f"{self.name}: cannot register function {function!r}; all {self.capacity} "
                "entries are in use"
            )
        new_id = len(self._name_to_id)
        self._name_to_id[function] = new_id
        self._id_to_name[new_id] = function
        return new_id

    def lookup_id(self, function: str) -> int:
        """Return the id of a previously interned function."""
        if function not in self._name_to_id:
            raise CapacityError(f"{self.name}: unknown function {function!r}")
        return self._name_to_id[function]

    def lookup_name(self, function_id: int) -> str:
        """Return the function name behind a hardware id."""
        if function_id not in self._id_to_name:
            raise CapacityError(f"{self.name}: unknown function id {function_id}")
        return self._id_to_name[function_id]

    def reset(self) -> None:
        self._name_to_id.clear()
        self._id_to_name.clear()
