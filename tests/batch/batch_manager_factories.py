"""The four golden manager configurations, as fresh-instance factories.

Mirrors ``tests/golden/golden_config.GOLDEN_MANAGERS`` (same paper
configurations) without importing across test directories.  The ideal
and nanos managers publish lane kernels and run vectorized; the two
nexus managers decline (``lane_kernel() is None``) and exercise the
batch backend's per-lane scalar fallback — both paths must be
byte-identical to the scalar engine.
"""

from __future__ import annotations

from repro.analysis.factories import (
    ideal_factory,
    nanos_factory,
    nexus_pp_factory,
    nexus_sharp_factory,
)

BATCH_TEST_MANAGERS = {
    "ideal": ideal_factory(),
    "nanos": nanos_factory(),
    "nexuspp": nexus_pp_factory(),
    "nexussharp": nexus_sharp_factory(6),
}

#: Managers whose lane kernels actually vectorize (no fallback).
KERNEL_MANAGERS = ("ideal", "nanos")
