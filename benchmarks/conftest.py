"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and

* prints the regenerated rows/series next to the paper's values (visible
  with ``pytest benchmarks/ --benchmark-only -s``),
* writes the same text to ``benchmarks/results/<name>.txt`` so the output
  survives pytest's capture,
* returns quickly: the workloads are generated at a reduced ``scale``
  (structure preserved) controlled by the ``REPRO_BENCH_SCALE``
  environment variable (default 0.05).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Directory the rendered tables/figures are written to.
RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale(default: float = 0.05) -> float:
    """Workload scale factor used by the trace-driven benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_seed() -> int:
    """Seed used by the trace-driven benchmarks."""
    return int(os.environ.get("REPRO_BENCH_SEED", 2015))


def record_report(name: str, text: str) -> Path:
    """Print ``text`` and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


@pytest.fixture
def report_recorder():
    """Fixture handing benchmarks the :func:`record_report` helper."""
    return record_report


@pytest.fixture
def scale() -> float:
    """Workload scale factor (override with REPRO_BENCH_SCALE)."""
    return bench_scale()


@pytest.fixture
def seed() -> int:
    """Workload seed (override with REPRO_BENCH_SEED)."""
    return bench_seed()
