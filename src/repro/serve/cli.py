"""Command-line entry point for the serving layer.

Examples::

    # Run a server (Ctrl-C to stop):
    python -m repro.serve serve --port 8080 --cache-dir .serve-cache

    # Sweep a grid through a running server, streaming JSONL rows
    # (the grid flags are the exact flags `repro.experiments.cli` takes,
    # so the cells -- and their cache keys -- are identical):
    python -m repro.serve sweep --connect 127.0.0.1:8080 \\
        --workloads c-ray sparselu --managers ideal "nexus#6" \\
        --cores 1 4 16 --scale 0.05 --output rows.jsonl

    # Throw a seeded load mix at a server and print the report:
    python -m repro.serve load --connect 127.0.0.1:8080 \\
        --requests 200 --concurrency 8 --seed 7
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence, Tuple

from repro.experiments.cli import _add_grid_arguments
from repro.serve.app import ServeConfig, Server
from repro.serve.client import ServeClient
from repro.serve.loadgen import build_requests, run_load


def _parse_connect(value: str) -> Tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="HTTP/JSON serving for simulation requests "
                    "(submit traces and grids, get makespans and sweeps).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run a server in the foreground")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral; default 8080)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="content-addressed result cache directory "
                              "(shared with sweep runs over the same dir)")
    p_serve.add_argument("--batch-lanes", type=int, default=8,
                         help="cells advanced in lockstep per simulation "
                              "block (default 8)")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="milliseconds a partial block waits to fill "
                              "before running anyway (default 2)")
    p_serve.add_argument("--max-pending", type=int, default=256,
                         help="bounded-queue depth past which requests get "
                              "429 + Retry-After (default 256)")
    p_serve.add_argument("--executor-threads", type=int, default=2,
                         help="simulation threads (default 2)")
    p_serve.add_argument("--fabric-workers", type=int, default=0,
                         help="> 0: run large blocks on the distributed "
                              "sweep fabric with this many local workers")

    p_sweep = sub.add_parser(
        "sweep", help="run a sweep grid through a server (streamed JSONL)")
    p_sweep.add_argument("--connect", type=_parse_connect, required=True,
                         metavar="HOST:PORT", help="server to talk to")
    _add_grid_arguments(p_sweep)
    p_sweep.add_argument("--output", default=None,
                         help="write the streamed JSONL rows to this file "
                              "(default: stdout)")

    p_load = sub.add_parser(
        "load", help="replay a seeded request mix against a server")
    p_load.add_argument("--connect", type=_parse_connect, required=True,
                        metavar="HOST:PORT", help="server to talk to")
    p_load.add_argument("--requests", type=int, default=100)
    p_load.add_argument("--concurrency", type=int, default=8)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--scale", type=float, default=0.05,
                        help="workload scale of the mix (default 0.05)")
    p_load.add_argument("--retry-on-429", action="store_true",
                        help="honour Retry-After instead of counting 429s")
    return parser


def _run_server(args: argparse.Namespace) -> int:
    import asyncio

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        batch_lanes=args.batch_lanes,
        batch_window=args.batch_window_ms / 1e3,
        max_pending=args.max_pending,
        executor_threads=args.executor_threads,
        fabric_workers=args.fabric_workers,
    )

    async def main() -> None:
        server = Server(config)
        await server.start()
        assert server.address is not None
        print(f"serving on http://{server.address[0]}:{server.address[1]} "
              f"(max_pending={config.max_pending}, "
              f"batch_lanes={config.batch_lanes})", file=sys.stderr)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    # The same flag -> SweepSpec mapping as `repro.experiments.cli`
    # (_spec_from_args), expressed as /v1/sweep request fields — which
    # is what keeps CLI-submitted grids cache-key-identical to local
    # sweeps over the same flags.
    fields = {
        "workloads": list(args.workloads),
        "managers": list(args.managers),
        "core_counts": list(args.cores),
        "scale": args.scale,
        "stream": bool(args.stream),
        "dynamic": bool(args.dynamic),
    }
    if args.seeds:
        fields["seeds"] = list(args.seeds)
    if args.nanos_max_cores:
        fields["max_cores"] = {"Nanos": args.nanos_max_cores}
    if args.schedulers:
        fields["schedulers"] = list(args.schedulers)
    if args.topologies:
        fields["topologies"] = list(args.topologies)
    if args.max_tasks is not None:
        fields["max_tasks"] = args.max_tasks
    if args.depths:
        fields["depths"] = list(args.depths)
    host, port = args.connect
    with ServeClient(host, port) as client:
        raw = client.sweep_raw(**fields)
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(raw)
        rows = raw.count(b"\n")
        print(f"{rows} rows -> {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(raw.decode("utf-8"))
    return 0


def _run_load(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import default_mix

    requests = build_requests(args.seed, args.requests,
                              default_mix(scale=args.scale))
    host, port = args.connect
    report = run_load(host, port, requests, concurrency=args.concurrency,
                      retry_on_429=args.retry_on_429)
    print(json.dumps(report.to_json(), indent=2))
    return 0 if report.errors == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _run_server(args)
    if args.command == "sweep":
        return _run_sweep(args)
    return _run_load(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
