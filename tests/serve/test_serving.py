"""End-to-end tests of the serving layer: endpoints, dedupe, caching.

Every test runs a real :class:`~repro.serve.app.Server` on its own
event-loop thread (``start_in_thread``) and talks to it over real
sockets with the stdlib-based :class:`~repro.serve.client.ServeClient`
— the same deployment shape the CI smoke job and the serving benchmark
use.
"""

from __future__ import annotations

import threading

import pytest

from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec
from repro.serve import ServeClient, ServeConfig, ServeError, start_in_thread
from repro.system.machine import Machine

SWEEP_FIELDS = dict(
    workloads=["microbench", "sparselu"],
    managers=["ideal", "nexus#2"],
    core_counts=[1, 2],
    scale=0.05,
)


def sweep_spec(**overrides):
    base = dict(SWEEP_FIELDS)
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture
def server():
    handle = start_in_thread(ServeConfig(batch_window=0.001))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port, timeout=60) as c:
        yield c


class TestEndpoints:
    def test_healthz_reports_queue_state(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["pending"] == 0 and doc["max_pending"] == 256

    def test_workloads_lists_the_registry(self, client):
        from repro.workloads.registry import list_workloads

        assert client.workloads() == list_workloads()

    def test_simulate_returns_makespan_and_cache_key(self, client):
        doc = client.simulate(workload="microbench", manager="ideal",
                              cores=2, scale=0.05)
        assert doc["makespan_us"] > 0
        assert len(doc["cache_key"]) == 64
        assert doc["cached"] is False
        assert doc["result"]["manager"] == "Ideal"

    def test_repeat_simulate_is_served_warm(self, client):
        fields = dict(workload="microbench", manager="nexus#2",
                      cores=2, scale=0.05)
        cold = client.simulate(**fields)
        warm = client.simulate(**fields)
        assert warm["cached"] is True
        assert warm["cache_key"] == cold["cache_key"]
        assert warm["result"] == cold["result"]

    def test_unknown_workload_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate(workload="not-a-workload", manager="ideal", cores=1)
        assert err.value.status == 404

    def test_bad_manager_is_400(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate(workload="microbench", manager="bogus", cores=1)
        assert err.value.status == 400

    def test_unknown_endpoint_is_404_and_bad_method_is_405(self, client):
        with pytest.raises(ServeError) as err:
            client._json("GET", "/v1/nope")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._json("GET", "/v1/simulate")
        assert err.value.status == 405

    def test_malformed_json_body_is_400(self, client):
        response = client._request("POST", "/v1/simulate", b"{not json")
        assert response.status == 400
        response.read()

    def test_keep_alive_survives_an_error_response(self, client):
        """One connection: error response, then a success — the keep-alive
        loop must not desynchronise after a 4xx."""
        with pytest.raises(ServeError):
            client.simulate(workload="not-a-workload", manager="ideal", cores=1)
        doc = client.simulate(workload="microbench", manager="ideal",
                              cores=1, scale=0.05)
        assert doc["makespan_us"] > 0

    def test_trace_upload_roundtrip_is_content_addressed(self, client):
        from repro.workloads.registry import get_workload

        trace = get_workload("microbench", scale=0.05)
        first = client.upload_trace(trace)
        again = client.upload_trace(trace)
        assert first == again  # same bytes, same id
        doc = client.simulate(workload={"trace_id": first},
                              manager="ideal", cores=2)
        direct = client.simulate(workload="microbench", manager="ideal",
                                 cores=2, scale=0.05)
        assert doc["makespan_us"] == direct["makespan_us"]

    def test_unknown_trace_id_is_404(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate(workload={"trace_id": "feedface"},
                            manager="ideal", cores=1)
        assert err.value.status == 404


class TestSweepStreaming:
    def test_streamed_rows_match_the_sweep_runner_byte_for_byte(
            self, client, tmp_path):
        raw = client.sweep_raw(**SWEEP_FIELDS)
        spec = sweep_spec()
        SweepRunner().run(spec, jsonl_path=tmp_path / "serial.jsonl")
        assert raw == (tmp_path / "serial.jsonl").read_bytes()

    def test_streamed_rows_parse_in_grid_order(self, client):
        rows = list(client.sweep_rows(**SWEEP_FIELDS))
        spec = sweep_spec()
        expected = [point.describe() for point in spec.points()]
        assert [row["point"] for row in rows] == expected
        assert all(row["result"]["makespan_us"] > 0 for row in rows)

    def test_report_format_carries_the_spec_hash(self, client):
        report = client.sweep_report(**SWEEP_FIELDS)
        assert report["spec_hash"] == sweep_spec().spec_hash()
        assert report["num_points"] == 8
        assert len(report["tables"]) == 2  # one per workload

    def test_sweep_accepts_cores_alias(self, client):
        fields = dict(SWEEP_FIELDS)
        fields["cores"] = fields.pop("core_counts")
        assert len(list(client.sweep_rows(**fields))) == 8

    def test_empty_grid_axes_are_400(self, client):
        with pytest.raises(ServeError) as err:
            client.sweep_report(workloads=[], managers=["ideal"],
                                core_counts=[1])
        assert err.value.status == 400


class TestDedupe:
    def test_concurrent_identical_requests_run_exactly_one_simulation(self):
        """N identical requests in flight at once must coalesce into a
        single ``Machine.run`` — the single-flight contract."""
        handle = start_in_thread(ServeConfig(batch_window=0.05))
        runs = []
        run_lock = threading.Lock()
        real_run = Machine.run

        def counting_run(self, *args, **kwargs):
            with run_lock:
                runs.append(1)
            return real_run(self, *args, **kwargs)

        n = 8
        barrier = threading.Barrier(n)
        results = [None] * n
        errors = []

        def hit(slot):
            try:
                with ServeClient(handle.host, handle.port, timeout=60) as c:
                    barrier.wait(timeout=30)
                    results[slot] = c.simulate(
                        workload="microbench", manager="ideal",
                        cores=2, scale=0.05)
            except Exception as exc:  # surface in the main thread
                errors.append(exc)

        Machine.run = counting_run
        try:
            threads = [threading.Thread(target=hit, args=(i,))
                       for i in range(n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = ServeClient(handle.host, handle.port).stats()
        finally:
            Machine.run = real_run
            handle.stop()
        assert errors == []
        assert len(runs) == 1, f"{len(runs)} simulations for {n} identical requests"
        makespans = {doc["makespan_us"] for doc in results}
        assert len(makespans) == 1
        assert stats["requests"] >= n
        assert stats["coalesced"] + stats["cache_hits"] == n - 1

    def test_sweep_and_simulate_share_cache_keys(self, client):
        """A cell served via /v1/simulate must be warm for /v1/sweep and
        vice versa — the cross-endpoint spec-hash identity."""
        client.simulate(workload="microbench", manager="ideal",
                        cores=1, scale=0.05)
        before = client.stats()
        rows = list(client.sweep_rows(
            workloads=["microbench"], managers=["ideal"],
            core_counts=[1], scale=0.05))
        after = client.stats()
        assert len(rows) == 1
        assert after["cache_hits"] == before["cache_hits"] + 1
        assert after["executed"] == before["executed"]


class TestWarmCache:
    def test_restarted_server_over_the_same_store_never_simulates(self, tmp_path):
        """Phase 1 populates a cache directory; phase 2 is a *new* server
        over the same directory with ``Machine.run`` forbidden — every
        request must be answered from the store."""
        store = str(tmp_path / "store")
        requests = [
            dict(workload="microbench", manager="ideal", cores=2, scale=0.05),
            dict(workload="microbench", manager="nexus#2", cores=2, scale=0.05),
            dict(workload="sparselu", manager="ideal", cores=4, scale=0.05),
        ]
        handle = start_in_thread(ServeConfig(cache_dir=store))
        try:
            with ServeClient(handle.host, handle.port, timeout=60) as c:
                cold = [c.simulate(**fields) for fields in requests]
        finally:
            handle.stop()

        real_run = Machine.run

        def forbidden(self, *args, **kwargs):
            raise AssertionError("Machine.run called on a warm serving pass")

        Machine.run = forbidden
        try:
            handle = start_in_thread(ServeConfig(cache_dir=store))
            try:
                with ServeClient(handle.host, handle.port, timeout=60) as c:
                    warm = [c.simulate(**fields) for fields in requests]
                    stats = c.stats()
            finally:
                handle.stop()
        finally:
            Machine.run = real_run
        assert [doc["result"] for doc in warm] == [doc["result"] for doc in cold]
        assert all(doc["cached"] for doc in warm)
        assert stats["executed"] == 0
        assert stats["cache_hits"] == len(requests)

    def test_server_cache_is_interchangeable_with_sweep_runner(self, tmp_path):
        """Cells simulated by a server are warm for a SweepRunner over the
        same store, proving key-level compatibility of the two."""
        store = str(tmp_path / "store")
        handle = start_in_thread(ServeConfig(cache_dir=store))
        try:
            with ServeClient(handle.host, handle.port, timeout=60) as c:
                list(c.sweep_rows(**SWEEP_FIELDS))
        finally:
            handle.stop()
        outcome = SweepRunner(cache_dir=store).run(sweep_spec())
        assert outcome.executed == 0
        assert outcome.cache_hits == 8
