"""Tests for the Ideal, Nanos and Vandierendonck manager models."""

import pytest

from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosConfig, NanosManager
from repro.managers.software import VandierendonckConfig, VandierendonckManager
from repro.common.errors import ConfigurationError
from repro.trace.task import TaskDescriptor, make_params


def make_task(task_id, inputs=(), outputs=(), duration=10.0):
    return TaskDescriptor(
        task_id=task_id,
        function="f",
        params=make_params(inputs=inputs, outputs=outputs),
        duration_us=duration,
    )


class TestIdealManager:
    def test_zero_cost_submission(self):
        manager = IdealManager()
        outcome = manager.submit(make_task(0, outputs=[0x40]), 5.0)
        assert outcome.accept_time_us == 5.0
        assert outcome.ready[0].time_us == 5.0

    def test_zero_cost_release(self):
        manager = IdealManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.submit(make_task(1, inputs=[0x40]), 0.0)
        finish = manager.finish(0, 42.0)
        assert finish.ready[0].time_us == 42.0

    def test_no_worker_overhead(self):
        assert IdealManager().worker_overhead_us == 0.0

    def test_supports_taskwait_on(self):
        assert IdealManager().supports_taskwait_on is True

    def test_statistics(self):
        manager = IdealManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.finish(0, 1.0)
        stats = manager.statistics()
        assert stats["tasks_inserted"] == 1
        assert stats["tasks_finished"] == 1

    def test_reset(self):
        manager = IdealManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.reset()
        # Same task id can be submitted again after a reset.
        outcome = manager.submit(make_task(0, outputs=[0x40]), 0.0)
        assert outcome.ready[0].task_id == 0


class TestNanosManager:
    def test_submission_costs_master_time(self):
        manager = NanosManager()
        outcome = manager.submit(make_task(0, outputs=[0x40]), 0.0)
        assert outcome.accept_time_us > 0.0

    def test_creation_cost_grows_with_parameters(self):
        manager = NanosManager()
        one = manager.submit(make_task(0, outputs=[0x40]), 0.0).accept_time_us
        manager.reset()
        many = manager.submit(make_task(0, outputs=[0x40, 0x80, 0xC0, 0x100]), 0.0).accept_time_us
        assert many > one

    def test_release_pays_lock_cost(self):
        manager = NanosManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.submit(make_task(1, inputs=[0x40]), 0.0)
        finish = manager.finish(0, 100.0)
        assert finish.ready[0].time_us > 100.0

    def test_lock_contention_serialises_finishes(self):
        manager = NanosManager()
        for i in range(4):
            manager.submit(make_task(i, outputs=[0x40 * (i + 1)]), 0.0)
        ends = [manager.finish(i, 200.0).notify_done_us for i in range(4)]
        assert ends == sorted(ends)
        assert len(set(ends)) == 4  # strictly serialised

    def test_worker_overhead_positive(self):
        assert NanosManager().worker_overhead_us > 0.0

    def test_custom_config(self):
        config = NanosConfig(task_creation_us=0.0, creation_per_param_us=0.0,
                             insert_lock_us=0.0, insert_lock_per_param_us=0.0,
                             finish_lock_us=0.0, wakeup_per_task_us=0.0,
                             worker_dispatch_us=0.0)
        manager = NanosManager(config)
        outcome = manager.submit(make_task(0, outputs=[0x40]), 3.0)
        assert outcome.accept_time_us == pytest.approx(3.0)

    def test_negative_config_rejected(self):
        with pytest.raises(ConfigurationError):
            NanosConfig(task_creation_us=-1.0)

    def test_statistics_include_lock(self):
        manager = NanosManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.finish(0, 10.0)
        assert manager.statistics()["lock_busy_us"] > 0.0

    def test_describe_includes_config(self):
        assert "config" in NanosManager().describe()


class TestVandierendonckManager:
    def test_fixed_insert_cost(self):
        manager = VandierendonckManager()
        outcome = manager.submit(make_task(0, outputs=[0x40]), 0.0)
        assert outcome.accept_time_us == pytest.approx(0.2)

    def test_cost_independent_of_parameters(self):
        manager = VandierendonckManager()
        one = manager.submit(make_task(0, outputs=[0x40]), 0.0).accept_time_us
        manager.reset()
        many = manager.submit(make_task(0, outputs=[0x40, 0x80, 0xC0]), 0.0).accept_time_us
        assert many == pytest.approx(one)

    def test_cheaper_than_nanos(self):
        task = make_task(0, outputs=[0x40, 0x80])
        sw = VandierendonckManager().submit(task, 0.0).accept_time_us
        nanos = NanosManager().submit(task, 0.0).accept_time_us
        assert sw < nanos

    def test_release(self):
        manager = VandierendonckManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.submit(make_task(1, inputs=[0x40]), 0.0)
        finish = manager.finish(0, 50.0)
        assert [n.task_id for n in finish.ready] == [1]

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            VandierendonckConfig(insert_us=-0.1)
