"""Regeneration of the paper's tables.

Each ``tableN_report`` function returns a dictionary with the raw data
plus a ``text`` entry containing the rendered table (paper values shown
alongside the reproduced ones where applicable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence

from repro.analysis.factories import ManagerFactory, paper_manager_set
from repro.analysis.formatting import render_table
from repro.analysis.speedup import run_scalability
from repro.common.constants import NANOS_MAX_CORES, PAPER_CORE_COUNTS
from repro.fpga.resources import paper_table1_rows, table1
from repro.trace.stats import compute_statistics
from repro.workloads.gaussian import PAPER_MATRIX_SIZES, gaussian_avg_flops, gaussian_task_count
from repro.workloads.registry import get_workload, paper_table2_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SweepRunner

#: Paper Table IV: maximum speedups per benchmark and manager.
PAPER_TABLE4 = {
    "c-ray": {"Nanos": 31.4, "Nexus++": 60.4, "Nexus#": 194.0},
    "rot-cc": {"Nanos": 24.5, "Nexus++": 254.0, "Nexus#": 254.0},
    "sparselu": {"Nanos": 24.5, "Nexus++": 84.9, "Nexus#": 94.4},
    "streamcluster": {"Nanos": 4.9, "Nexus++": 7.9, "Nexus#": 39.6},
    "h264dec-1x1-10f": {"Nanos": 0.7, "Nexus++": 2.2, "Nexus#": 6.9},
    "h264dec-2x2-10f": {"Nanos": 1.4, "Nexus++": 2.7, "Nexus#": 7.7},
    "h264dec-4x4-10f": {"Nanos": 3.6, "Nexus++": 2.7, "Nexus#": 6.8},
    "h264dec-8x8-10f": {"Nanos": 3.9, "Nexus++": 2.5, "Nexus#": 4.7},
}

#: Paper Table II rows (#tasks, total work ms, avg task size µs, deps).
PAPER_TABLE2 = {
    "c-ray": (1200, 7381, 6151.0, "1"),
    "rot-cc": (16262, 8150, 501.0, "1"),
    "sparselu": (54814, 38128, 696.0, "1-3"),
    "streamcluster": (652776, 237908, 364.0, "1-3"),
    "h264dec-1x1-10f": (139961, 640, 4.6, "2-6"),
    "h264dec-2x2-10f": (35921, 550, 15.3, "2-6"),
    "h264dec-4x4-10f": (9333, 519, 55.6, "2-6"),
    "h264dec-8x8-10f": (2686, 510, 189.9, "2-6"),
}


def table1_report() -> Dict[str, object]:
    """Table I: device utilisation and frequencies per configuration."""
    estimates = table1()
    paper = paper_table1_rows()
    headers = [
        "Configuration", "Registers %", "LUTs %", "Block RAMs %",
        "Max MHz", "Test MHz", "paper Regs %", "paper LUTs %", "paper BRAM %", "paper Max MHz",
    ]
    rows = []
    for estimate in estimates:
        reference = paper.get(estimate.configuration, {})
        rows.append(
            [
                estimate.configuration,
                round(estimate.register_pct),
                round(estimate.lut_pct),
                round(estimate.block_ram_pct),
                round(estimate.max_frequency_mhz, 2),
                round(estimate.test_frequency_mhz, 2),
                reference.get("registers_pct", "-"),
                reference.get("luts_pct", "-"),
                reference.get("brams_pct", "-"),
                reference.get("max_mhz", "-"),
            ]
        )
    text = render_table(headers, rows, title="Table I: device utilisation on the ZC706 (model vs. paper)")
    return {"estimates": estimates, "paper": paper, "text": text}


def table2_report(scale: float = 1.0, seed: Optional[int] = None) -> Dict[str, object]:
    """Table II: workload statistics of the generated traces."""
    headers = [
        "benchmark", "# tasks", "total work (ms)", "avg task (us)", "# deps",
        "paper tasks", "paper work", "paper avg", "paper deps",
    ]
    rows = []
    stats = {}
    for name in paper_table2_workloads():
        trace = get_workload(name, scale=scale, seed=seed)
        stat = compute_statistics(trace)
        stats[name] = stat
        paper = PAPER_TABLE2[name]
        rows.append(
            [
                name,
                stat.num_tasks,
                round(stat.total_work_ms),
                round(stat.avg_task_us, 1),
                stat.deps_label,
                paper[0],
                paper[1],
                paper[2],
                paper[3],
            ]
        )
    title = "Table II: benchmark statistics (generated traces vs. paper)"
    if scale != 1.0:
        title += f" [scale={scale}]"
    text = render_table(headers, rows, title=title)
    return {"stats": stats, "paper": PAPER_TABLE2, "scale": scale, "text": text}


def table3_report(matrix_sizes: Sequence[int] = PAPER_MATRIX_SIZES) -> Dict[str, object]:
    """Table III: Gaussian-elimination task counts and granularity."""
    headers = ["Matrix dimension", "# Tasks", "Avg FLOPs", "Avg task (us)"]
    rows = []
    data = {}
    for n in matrix_sizes:
        tasks = gaussian_task_count(n)
        flops = gaussian_avg_flops(n)
        us = flops / 2000.0
        data[n] = {"tasks": tasks, "avg_flops": flops, "avg_us": us}
        rows.append([n, tasks, round(flops), round(us, 3)])
    text = render_table(headers, rows, title="Table III: Gaussian elimination tasks for different matrix sizes")
    return {"data": data, "text": text}


def table4_report(
    scale: float = 0.05,
    seed: Optional[int] = None,
    core_counts: Sequence[int] = PAPER_CORE_COUNTS,
    workloads: Optional[Sequence[str]] = None,
    managers: Optional[Mapping[str, ManagerFactory]] = None,
    runner: Optional["SweepRunner"] = None,
) -> Dict[str, object]:
    """Table IV: maximum speedup per benchmark and task-graph manager.

    By default the workloads are generated at a reduced ``scale`` so the
    full table regenerates in minutes; the dependency *shape* (and hence
    the ranking between managers) is preserved.
    """
    workloads = tuple(workloads or paper_table2_workloads())
    managers = managers or paper_manager_set()
    headers = ["benchmark"]
    for name in managers:
        headers.append(f"{name} max")
    headers += ["paper Nanos", "paper Nexus++", "paper Nexus#"]
    rows = []
    studies = {}
    max_cores = {"Nanos": NANOS_MAX_CORES}
    for workload_name in workloads:
        trace = get_workload(workload_name, scale=scale, seed=seed)
        study = run_scalability(trace, managers, core_counts, max_cores=max_cores, runner=runner)
        studies[workload_name] = study
        paper = PAPER_TABLE4.get(workload_name, {})
        row = [workload_name]
        for manager_name in managers:
            row.append(round(study.curves[manager_name].max_speedup, 1))
        row += [paper.get("Nanos", "-"), paper.get("Nexus++", "-"), paper.get("Nexus#", "-")]
        rows.append(row)
    title = f"Table IV: maximum scalability per task-graph manager [scale={scale}]"
    text = render_table(headers, rows, title=title)
    return {"studies": studies, "scale": scale, "text": text}
