"""Trace events: the master-thread program replayed by the testbench.

A trace is not just a bag of tasks — the order in which the master thread
submits them and the barriers it executes in between shape the available
parallelism.  Three event kinds exist, mirroring the OmpSs pragmas the
paper supports (Section VII: ``in``, ``out``, ``inout``, ``taskwait``,
``taskwait on``):

* :class:`TaskSubmitEvent` — the master submits one task.
* :class:`SpawnEvent` — a *task* submits one task (dynamic nested
  parallelism).  It subclasses :class:`TaskSubmitEvent`, so every
  consumer that replays submissions statically (the machine's compiled
  trace, the DAG analysis, serialization) treats a recorded spawn as a
  plain submission; the extra ``parent_id`` keeps the provenance.
* :class:`TaskwaitEvent` — the master blocks until *all* previously
  submitted tasks have finished.
* :class:`TaskwaitOnEvent` — the master blocks until the data behind one
  specific address is available, i.e. until the last previously submitted
  writer of that address has finished.  Nexus++ does not support this
  pragma and has to fall back to a full ``taskwait`` (Section III), which
  is what costs it the h264dec scalability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.common.constants import ADDRESS_MASK
from repro.common.errors import TraceError
from repro.trace.task import TaskDescriptor


@dataclass(frozen=True)
class TaskSubmitEvent:
    """The master thread submits ``task`` to the task manager."""

    task: TaskDescriptor

    @property
    def kind(self) -> str:
        return "submit"


@dataclass(frozen=True)
class SpawnEvent(TaskSubmitEvent):
    """A running task (``parent_id``) submits ``task`` to the manager.

    Produced by dynamic runs and by the serial elaboration of a
    :class:`~repro.trace.dynamic.DynamicProgram`.  ``parent_id`` is
    ``None`` when the master thread itself performed the submission.
    Because this is a :class:`TaskSubmitEvent`, a trace containing
    recorded spawns replays through the static machine unchanged.
    """

    parent_id: Optional[int] = None

    @property
    def kind(self) -> str:
        return "spawn"


@dataclass(frozen=True)
class TaskwaitEvent:
    """The master thread waits for all previously submitted tasks."""

    @property
    def kind(self) -> str:
        return "taskwait"


@dataclass(frozen=True)
class TaskwaitOnEvent:
    """The master thread waits for the last writer of ``address``.

    If no previously submitted task writes ``address`` the barrier is a
    no-op, matching OmpSs semantics.
    """

    address: int

    def __post_init__(self) -> None:
        if not isinstance(self.address, int) or self.address < 0:
            raise TraceError(f"taskwait on address must be a non-negative integer, got {self.address!r}")
        if self.address != self.address & ADDRESS_MASK:
            raise TraceError(f"taskwait on address {self.address:#x} does not fit in 48 bits")

    @property
    def kind(self) -> str:
        return "taskwait_on"


TraceEvent = Union[TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent]
