"""Unit tests for the streaming trace pipeline (repro.trace.stream)."""

from __future__ import annotations

import pytest

from repro.common.errors import TraceError
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent
from repro.trace.serialization import trace_digest
from repro.trace.stream import (
    EventEmitter,
    TaskStream,
    TraceStream,
    as_stream,
    limit_stream,
    materialize,
    truncate_trace,
)
from repro.trace.trace import Trace, TraceBuilder
from repro.workloads.synthetic import (
    generate_independent,
    stream_fork_join,
    stream_independent,
)


def _tiny_stream(n: int = 5) -> TraceStream:
    def events():
        emit = EventEmitter()
        for i in range(n):
            yield emit.task("work", duration_us=2.0, outputs=[0x1000 + 64 * i])
        yield emit.taskwait()

    return TraceStream("tiny", events, metadata={"n": n})


class TestEventEmitter:
    def test_sequential_ids_mirror_trace_builder(self):
        emit = EventEmitter()
        builder = TraceBuilder("ref")
        for i in range(4):
            event = emit.task("f", duration_us=1.0, inputs=[0x10], outputs=[0x2000 + 64 * i])
            ref = builder.add_task("f", duration_us=1.0, inputs=[0x10], outputs=[0x2000 + 64 * i])
            assert event.task == ref
        assert emit.num_tasks == 4

    def test_barrier_events(self):
        emit = EventEmitter()
        assert isinstance(emit.taskwait(), TaskwaitEvent)
        assert emit.taskwait_on(0x40).address == 0x40

    def test_params_and_address_lists_are_exclusive(self):
        emit = EventEmitter()
        with pytest.raises(TraceError):
            emit.task("f", duration_us=1.0, inputs=[1], params=())


class TestTraceStream:
    def test_replayable(self):
        stream = _tiny_stream()
        first = list(stream.iter_events())
        second = list(stream.iter_events())
        assert first == second
        assert len(first) == 6

    def test_empty_name_rejected(self):
        with pytest.raises(TraceError):
            TraceStream("", lambda: iter(()))

    def test_satisfies_protocol(self):
        assert isinstance(_tiny_stream(), TaskStream)
        assert isinstance(generate_independent(3, seed=1), TaskStream)


class TestMaterialize:
    def test_round_trip_equals_builder_output(self):
        trace = materialize(_tiny_stream())
        assert isinstance(trace, Trace)
        assert trace.name == "tiny"
        assert trace.num_tasks == 5
        assert trace.metadata["n"] == 5

    def test_stream_generator_matches_generate(self):
        a = materialize(stream_independent(7, seed=3))
        b = generate_independent(7, seed=3)
        assert trace_digest(a) == trace_digest(b)

    def test_duplicate_ids_rejected(self):
        dup = TaskSubmitEvent(materialize(_tiny_stream()).events[0].task)
        with pytest.raises(TraceError):
            materialize(as_stream([dup, dup], name="dup"))


class TestAsStream:
    def test_trace_passes_through(self):
        trace = generate_independent(3, seed=1)
        assert as_stream(trace) is trace

    def test_iterable_is_wrapped(self):
        events = list(_tiny_stream().iter_events())
        stream = as_stream(events, name="wrapped")
        assert stream.name == "wrapped"
        assert list(stream.iter_events()) == events


class TestLimitStream:
    def test_none_is_identity(self):
        stream = _tiny_stream()
        assert limit_stream(stream, None) is stream

    def test_truncates_and_appends_taskwait(self):
        limited = materialize(limit_stream(_tiny_stream(10), 4))
        assert limited.num_tasks == 4
        assert isinstance(limited.events[-1], TaskwaitEvent)
        assert limited.metadata["max_tasks"] == 4

    def test_no_double_taskwait_when_cut_lands_on_barrier(self):
        # fork-join: width tasks, taskwait, reduce, ... — cutting right
        # after a phase keeps exactly one join barrier.
        limited = materialize(limit_stream(stream_fork_join(3, 4, seed=1), 4))
        kinds = [type(e).__name__ for e in limited.events]
        assert kinds.count("TaskwaitEvent") == 1

    def test_limit_larger_than_stream_changes_only_metadata(self):
        base = materialize(_tiny_stream(5))
        limited = materialize(limit_stream(_tiny_stream(5), 50))
        assert limited.events == base.events
        assert limited.metadata["max_tasks"] == 50

    def test_barriers_before_cut_survive(self):
        def events():
            emit = EventEmitter()
            yield emit.task("a", duration_us=1.0, outputs=[0x100])
            yield emit.taskwait_on(0x100)
            yield emit.task("b", duration_us=1.0, outputs=[0x140])
            yield emit.task("c", duration_us=1.0, outputs=[0x180])

        limited = materialize(limit_stream(TraceStream("s", events), 2))
        assert isinstance(limited.events[1], TaskwaitOnEvent)
        assert limited.num_tasks == 2

    def test_non_positive_limit_rejected(self):
        with pytest.raises(TraceError):
            limit_stream(_tiny_stream(), 0)


class TestTruncateTrace:
    def test_matches_limit_stream(self):
        trace = generate_independent(10, seed=2)
        truncated = truncate_trace(trace, 6)
        via_stream = materialize(limit_stream(trace, 6))
        assert trace_digest(truncated) == trace_digest(via_stream)
        assert truncate_trace(trace, None) is trace
