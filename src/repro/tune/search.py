"""Successive-halving search over the cached sweep fabric.

The driver races a :class:`~repro.tune.space.SearchSpace`'s candidates
over a ladder of growing fidelity: rung ``r`` evaluates the surviving
candidates on the first ``min_units * eta**r`` ``(workload, seed)``
units, ranks them with the objective, and promotes the top ``1/eta``.
Fidelity prefixes are cumulative and every rung runs through the
content-addressed result cache, so the cells a survivor already
simulated on earlier rungs are cache hits — re-promotion costs nothing,
and a warm re-run of a whole search executes zero simulations.

The **budget** counts scheduled grid cells (cache hits included): it
bounds the search *shape* deterministically, independent of cache state,
so "found within N cells" means the same thing on cold and warm runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.experiments.runner import SweepRunner
from repro.tune.objectives import Objective, parse_objective
from repro.tune.space import Candidate, SearchSpace

__all__ = ["RungOutcome", "ScoredCandidate", "SuccessiveHalving", "TuneResult"]

#: A candidate's grid rows are recovered from sweep outcomes by this key.
CandidateKey = Tuple[str, str, str]


@dataclass(frozen=True)
class ScoredCandidate:
    """One frontier entry: a candidate with its rung score and metrics."""

    candidate: Candidate
    score: float
    metrics: Dict[str, float]

    def describe(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate.describe(),
            "score": self.score,
            "metrics": dict(self.metrics),
        }


@dataclass(frozen=True)
class RungOutcome:
    """Everything one rung of the ladder produced."""

    index: int
    #: The ``(workload, seed)`` prefix this rung evaluated candidates on.
    units: Tuple[Tuple[str, int], ...]
    #: Grid cells scheduled / actually simulated / served from cache.
    cells: int
    executed: int
    cache_hits: int
    #: Candidates ranked best-first under the objective.
    frontier: Tuple[ScoredCandidate, ...]
    #: Keys of the candidates promoted to the next rung (the winner only,
    #: on the final rung).
    survivors: Tuple[str, ...]

    def describe(self) -> Dict[str, object]:
        return {
            "rung": self.index,
            "units": [{"workload": workload, "seed": seed}
                      for workload, seed in self.units],
            "cells": self.cells,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "frontier": [entry.describe() for entry in self.frontier],
            "survivors": list(self.survivors),
        }


@dataclass
class TuneResult:
    """The finished search: per-rung frontiers plus the winner."""

    space: SearchSpace
    objective_name: str
    eta: int
    budget: Optional[int]
    rungs: List[RungOutcome] = field(default_factory=list)
    best: Optional[ScoredCandidate] = None
    #: True when the budget stopped the ladder before full fidelity —
    #: ``best`` then comes from the last completed rung.
    budget_exhausted: bool = False

    @property
    def total_cells(self) -> int:
        return sum(rung.cells for rung in self.rungs)

    @property
    def total_executed(self) -> int:
        return sum(rung.executed for rung in self.rungs)

    @property
    def total_cache_hits(self) -> int:
        return sum(rung.cache_hits for rung in self.rungs)


class SuccessiveHalving:
    """Race candidates over growing fidelity, halving each rung.

    Parameters
    ----------
    space:
        What to search and how to evaluate it.
    objective:
        Objective name (``makespan`` / ``speedup`` / ``area-speedup``)
        or an :class:`~repro.tune.objectives.Objective` instance.
    eta:
        Halving rate: each rung keeps the top ``ceil(n/eta)`` candidates
        and multiplies fidelity by ``eta``.
    min_units:
        Fidelity units of the first rung.
    budget:
        Optional bound on total scheduled grid cells; the ladder stops
        before any rung that would exceed it (the first rung must fit).
    runner:
        The :class:`~repro.experiments.runner.SweepRunner` executing rung
        grids.  Pass one with a cache directory to get free re-promotion
        and warm re-runs; defaults to an uncached serial runner.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Union[str, Objective] = "makespan",
        *,
        eta: int = 2,
        min_units: int = 1,
        budget: Optional[int] = None,
        runner: Optional[SweepRunner] = None,
    ) -> None:
        if eta < 2:
            raise ConfigurationError(f"eta must be >= 2, got {eta}")
        if min_units < 1:
            raise ConfigurationError(f"min_units must be >= 1, got {min_units}")
        if budget is not None and budget < 1:
            raise ConfigurationError(f"budget must be >= 1 cells, got {budget}")
        self.space = space
        self.objective = parse_objective(objective)
        self.eta = eta
        self.min_units = min_units
        self.budget = budget
        self.runner = runner if runner is not None else SweepRunner()
        for candidate in space.candidates():
            self.objective.validate(candidate)

    # -- rung execution ----------------------------------------------------
    def _run_rung(
        self,
        index: int,
        survivors: Sequence[Candidate],
        units: Sequence[Tuple[str, int]],
        base_spec,
    ) -> Tuple[int, int, int, Dict[CandidateKey, list]]:
        """Execute one rung as per-(scheduler, topology) sweep grids.

        Halving breaks the cross-product shape a single grid would
        imply, so survivors are grouped by their scheduler/topology pair
        and each group runs as its own derived :class:`SweepSpec` —
        every cell scheduled belongs to a surviving candidate.
        """
        groups: Dict[Tuple[str, str], List[Candidate]] = {}
        for candidate in survivors:
            groups.setdefault((candidate.scheduler, candidate.topology),
                              []).append(candidate)
        cells = executed = cache_hits = 0
        records: Dict[CandidateKey, list] = {}
        for (scheduler, topology), group in groups.items():
            spec = base_spec.derive(
                workloads=list(self.space.workload_specs(units)),
                managers={c.display: c.factory for c in group},
                schedulers=(scheduler,),
                topologies=(topology,),
                name=f"{base_spec.name}:rung{index}:{scheduler}:{topology}",
            )
            outcome = self.runner.run(spec)
            cells += len(outcome.points)
            executed += outcome.executed
            cache_hits += outcome.cache_hits
            for point, result in zip(outcome.points, outcome.results):
                key = (point.manager_name, scheduler, topology)
                records.setdefault(key, []).append(result)
        return cells, executed, cache_hits, records

    def _planned_cells(self, survivors: Sequence[Candidate],
                       num_units: int) -> int:
        """Cells the next rung schedules (cache state is irrelevant)."""
        return len(survivors) * num_units * self.space.cells_per_unit

    # -- the ladder --------------------------------------------------------
    def run(self, log: Optional[Callable[[str], None]] = None) -> TuneResult:
        """Run the ladder to full fidelity (or budget) and pick a winner."""
        emit = log or (lambda message: None)
        space = self.space
        result = TuneResult(space=space, objective_name=self.objective.name,
                            eta=self.eta, budget=self.budget)
        survivors = list(space.candidates())
        units = space.units()
        base_spec = space.base_spec()
        num_units = min(self.min_units, len(units))
        spent = 0
        index = 0
        while True:
            rung_units = units[:num_units]
            planned = self._planned_cells(survivors, num_units)
            if self.budget is not None and spent + planned > self.budget:
                if not result.rungs:
                    raise ConfigurationError(
                        f"budget of {self.budget} cells cannot fund the first "
                        f"rung ({planned} cells: {len(survivors)} candidates "
                        f"x {num_units} units x {space.cells_per_unit} cells)")
                result.budget_exhausted = True
                emit(f"budget: rung {index} needs {planned} cells, "
                     f"{self.budget - spent} remain — stopping")
                break
            cells, executed, cache_hits, records = self._run_rung(
                index, survivors, rung_units, base_spec)
            spent += cells
            frontier = self._rank(survivors, records)
            full_fidelity = num_units >= len(units)
            if full_fidelity:
                keep = 1
            else:
                keep = max(1, math.ceil(len(survivors) / self.eta))
            promoted = tuple(entry.candidate.key for entry in frontier[:keep])
            result.rungs.append(RungOutcome(
                index=index, units=tuple(rung_units), cells=cells,
                executed=executed, cache_hits=cache_hits,
                frontier=tuple(frontier), survivors=promoted))
            emit(f"rung {index}: {len(survivors)} candidates x "
                 f"{len(rung_units)} units = {cells} cells "
                 f"({cache_hits} cached) -> keep {keep}")
            if full_fidelity:
                break
            survivors = [entry.candidate for entry in frontier[:keep]]
            index += 1
            next_units = num_units * self.eta
            if len(survivors) == 1:
                # A lone survivor has nothing left to race: jump straight
                # to full fidelity for the final, reportable evaluation
                # (its earlier cells are cache hits either way).
                next_units = len(units)
            num_units = min(len(units), next_units)
        result.best = result.rungs[-1].frontier[0]
        emit(f"best: {result.best.candidate.key} "
             f"(score {result.best.score:.4g}, {spent} cells, "
             f"{result.total_executed} simulated)")
        return result

    def _rank(self, survivors: Sequence[Candidate],
              records: Dict[CandidateKey, list]) -> List[ScoredCandidate]:
        frontier = []
        for candidate in survivors:
            key = (candidate.display, candidate.scheduler, candidate.topology)
            results = records.get(key)
            if not results:  # pragma: no cover - defensive
                raise ConfigurationError(
                    f"rung produced no results for candidate {candidate.key!r}")
            score, metrics = self.objective.evaluate(candidate, results)
            frontier.append(ScoredCandidate(candidate=candidate, score=score,
                                            metrics=metrics))
        # Ties break on the stable candidate key, so rankings (and
        # therefore survivors and reports) are deterministic.
        frontier.sort(key=lambda entry: (-entry.score, entry.candidate.key))
        return frontier
