"""Analysis, experiment drivers and report rendering.

This package turns the simulation building blocks into the paper's
tables and figures:

* :mod:`repro.analysis.factories` — standard manager configurations
  (Ideal, Nanos, Nexus++, Nexus# n TG at 100 MHz or synthesis frequency).
* :mod:`repro.analysis.speedup` — scalability sweeps (speedup vs. cores).
* :mod:`repro.analysis.tables` — Table I (FPGA resources), Table II
  (workload statistics), Table III (Gaussian task counts) and Table IV
  (maximum speedups).
* :mod:`repro.analysis.figures` — Figure 7 (Nexus# scalability vs. number
  of task graphs), Figure 8 (Starbench speedups vs. other managers),
  Figure 9 (Gaussian elimination), the Section IV-E micro-benchmark and
  the Figure 3 distribution-quality study.
* :mod:`repro.analysis.formatting` — plain-text table/series rendering.
* :mod:`repro.analysis.cli` — ``nexus-repro`` command-line entry point.
"""

from repro.analysis.factories import (
    ideal_factory,
    make_manager,
    nanos_factory,
    nexus_pp_factory,
    nexus_sharp_factory,
    paper_manager_set,
)
from repro.analysis.formatting import format_speedup_series, render_table
from repro.analysis.speedup import ScalabilityCurve, ScalabilityStudy, run_scalability
from repro.analysis.tables import table1_report, table2_report, table3_report, table4_report
from repro.analysis.figures import (
    distribution_quality_report,
    figure7_report,
    figure8_report,
    figure9_report,
    microbenchmark_report,
)

__all__ = [
    "ideal_factory",
    "nanos_factory",
    "nexus_pp_factory",
    "nexus_sharp_factory",
    "make_manager",
    "paper_manager_set",
    "render_table",
    "format_speedup_series",
    "ScalabilityCurve",
    "ScalabilityStudy",
    "run_scalability",
    "table1_report",
    "table2_report",
    "table3_report",
    "table4_report",
    "figure7_report",
    "figure8_report",
    "figure9_report",
    "microbenchmark_report",
    "distribution_quality_report",
]
