"""Simulation-as-a-service: the asyncio HTTP/JSON serving layer.

The front door of the reproduction (the ROADMAP's "millions of users"
story): clients submit a trace — inline, as a chunked-JSONL upload, or by
registered workload name — plus a manager/topology/scheduler
configuration, and receive a makespan, a full schedule, or a whole sweep
report.  The layer is built from four pieces:

* :mod:`repro.serve.app` — the HTTP server itself (pure-stdlib asyncio,
  no third-party web framework), with chunked-JSONL streaming for large
  results;
* :mod:`repro.serve.batcher` — request coalescing: identical in-flight
  requests share one simulation (single-flight keyed by the same
  spec-hash cache key the sweep runner uses), distinct requests are
  grouped into lane batches for the vectorized batch backend
  (:func:`repro.sim.batch.run_lanes`), and every finished cell is
  published to the shared :class:`~repro.experiments.cache.ResultCache`;
* :mod:`repro.serve.admission` — bounded-queue back-pressure: past
  saturation the server answers ``429`` with a measured ``Retry-After``
  instead of queueing without bound (the serving-side analogue of
  ``Machine.run_stream``'s ``max_in_flight`` window);
* :mod:`repro.serve.client` — a small synchronous client library used by
  the tests, the load generator and the CLI.

Start a server with ``python -m repro.serve`` (see
:mod:`repro.serve.cli`) or in-process via :func:`start_in_thread`.
Failure semantics are documented in ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, Saturated
from repro.serve.app import Server, ServeConfig, start_in_thread
from repro.serve.batcher import Batcher, BatcherStats
from repro.serve.client import ServeClient, ServeError, ServeSaturated

__all__ = [
    "AdmissionController",
    "Batcher",
    "BatcherStats",
    "Saturated",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeSaturated",
    "Server",
    "start_in_thread",
]
