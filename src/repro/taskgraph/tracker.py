"""The functional dependency engine shared by all hardware manager models.

Nexus++ and Nexus# differ in *where* the per-address state lives (one
central task graph vs. several distributed ones) and in the cycle cost of
getting information in and out, but the dependency bookkeeping itself is
identical.  :class:`DependencyTracker` implements that bookkeeping over a
configurable number of :class:`~repro.taskgraph.table.AddressTable`
instances:

* :meth:`insert_task` registers a new task's accesses and reports, per
  parameter, which task graph it went to and whether it had to wait;
* :meth:`finish_task` replays a finished task's accesses, kicks off
  waiting tasks and reports which tasks became ready.

The timing layers in :mod:`repro.nexus` translate these reports into
pipeline occupancy; the functional result (who waits for whom) is
identical for every hardware configuration, which the property-based
tests assert against the reference DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.taskgraph.address_state import AccessMode
from repro.taskgraph.dep_counts import DependenceCountsTable
from repro.taskgraph.function_table import FunctionTable
from repro.taskgraph.table import AddressTable
from repro.taskgraph.task_pool import TaskPool
from repro.trace.task import TaskDescriptor


@dataclass(frozen=True)
class AccessRecord:
    """One deduplicated address access of a task."""

    address: int
    mode: AccessMode
    table_index: int
    must_wait: bool
    set_conflict: bool


@dataclass(frozen=True)
class InsertResult:
    """Outcome of inserting one task into the task graph(s)."""

    task_id: int
    accesses: Tuple[AccessRecord, ...]
    dependence_count: int
    ready: bool
    pool_was_full: bool

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    def accesses_per_table(self) -> Dict[int, int]:
        """Number of accesses routed to each task graph."""
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.table_index] = counts.get(access.table_index, 0) + 1
        return counts


@dataclass(frozen=True)
class FinishAccessRecord:
    """Cleanup of one address access when its task finishes."""

    address: int
    table_index: int
    kicked_off: Tuple[int, ...]


@dataclass(frozen=True)
class FinishResult:
    """Outcome of retiring one finished task."""

    task_id: int
    accesses: Tuple[FinishAccessRecord, ...]
    newly_ready: Tuple[int, ...]

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    @property
    def num_kickoffs(self) -> int:
        return sum(len(a.kicked_off) for a in self.accesses)

    def accesses_per_table(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.table_index] = counts.get(access.table_index, 0) + 1
        return counts


def merge_access_modes(task: TaskDescriptor) -> List[Tuple[int, AccessMode]]:
    """Deduplicate a task's parameter list into one access per address.

    A task may legally list the same address several times (e.g. an array
    block passed both as ``in`` and as part of an ``inout`` region); the
    hardware tracks the address once, with the union of the access modes.
    Declaration order of the first occurrence is preserved because the
    Input Parser distributes parameters in arrival order.
    """
    order: List[int] = []
    modes: Dict[int, Tuple[bool, bool]] = {}
    for param in task.params:
        reads = param.direction.reads
        writes = param.direction.writes
        if param.address in modes:
            prev_reads, prev_writes = modes[param.address]
            modes[param.address] = (prev_reads or reads, prev_writes or writes)
        else:
            modes[param.address] = (reads, writes)
            order.append(param.address)
    result: List[Tuple[int, AccessMode]] = []
    for address in order:
        reads, writes = modes[address]
        if reads and writes:
            mode = AccessMode.READWRITE
        elif writes:
            mode = AccessMode.WRITE
        else:
            mode = AccessMode.READ
        result.append((address, mode))
    return result


class DependencyTracker:
    """Functional dependency resolution over one or more address tables.

    Parameters
    ----------
    num_tables:
        Number of task graphs the addresses are distributed over.
    distribute:
        Function mapping an address to a table index in
        ``range(num_tables)``.  Defaults to "always table 0", which is the
        Nexus++ (centralised) behaviour.
    table_factory:
        Callable creating the :class:`AddressTable` for a given index,
        allowing callers to configure geometry.
    task_pool / function_table:
        Optional pre-configured structures (defaults are created
        otherwise).
    """

    def __init__(
        self,
        num_tables: int = 1,
        distribute: Optional[Callable[[int], int]] = None,
        table_factory: Optional[Callable[[int], AddressTable]] = None,
        task_pool: Optional[TaskPool] = None,
        function_table: Optional[FunctionTable] = None,
    ) -> None:
        if num_tables <= 0:
            raise ConfigurationError(f"num_tables must be positive, got {num_tables}")
        self.num_tables = num_tables
        self._distribute = distribute or (lambda address: 0)
        factory = table_factory or (lambda index: AddressTable(name=f"TG{index}"))
        self.tables: List[AddressTable] = [factory(i) for i in range(num_tables)]
        self.dep_counts = DependenceCountsTable()
        self.task_pool = task_pool or TaskPool()
        self.function_table = function_table or FunctionTable()
        #: tasks that were reported ready and are waiting to run or running
        self._in_flight: Dict[int, TaskDescriptor] = {}
        self.total_inserted = 0
        self.total_finished = 0

    # -- helpers --------------------------------------------------------------
    def table_for(self, address: int) -> int:
        """Index of the task graph responsible for ``address``."""
        index = self._distribute(address)
        if not 0 <= index < self.num_tables:
            raise SimulationError(
                f"distribution function returned table {index} for address {address:#x}; "
                f"valid range is [0, {self.num_tables})"
            )
        return index

    @property
    def in_flight_tasks(self) -> int:
        """Number of tasks inserted but not yet finished."""
        return len(self._in_flight)

    # -- main interface ---------------------------------------------------------
    def insert_task(self, task: TaskDescriptor) -> InsertResult:
        """Insert ``task`` into the task graph(s) and compute its readiness."""
        if task.task_id in self._in_flight:
            raise SimulationError(f"task {task.task_id} inserted twice")
        self._in_flight[task.task_id] = task
        pool_was_full = self.task_pool.insert(task)
        self.function_table.intern(task.function)
        accesses: List[AccessRecord] = []
        dependence_count = 0
        for address, mode in merge_access_modes(task):
            table_index = self.table_for(address)
            must_wait, set_conflict = self.tables[table_index].insert_access(address, task.task_id, mode)
            if must_wait:
                dependence_count += 1
            accesses.append(
                AccessRecord(
                    address=address,
                    mode=mode,
                    table_index=table_index,
                    must_wait=must_wait,
                    set_conflict=set_conflict,
                )
            )
        self.dep_counts.register(task.task_id, dependence_count, params_total=len(accesses))
        self.total_inserted += 1
        return InsertResult(
            task_id=task.task_id,
            accesses=tuple(accesses),
            dependence_count=dependence_count,
            ready=dependence_count == 0,
            pool_was_full=pool_was_full,
        )

    def finish_task(self, task_id: int) -> FinishResult:
        """Retire ``task_id``: release its addresses and kick off waiters."""
        task = self._in_flight.pop(task_id, None)
        if task is None:
            raise SimulationError(f"finish for unknown or already finished task {task_id}")
        if self.dep_counts.pending(task_id) != 0:
            raise SimulationError(
                f"task {task_id} finished while still having "
                f"{self.dep_counts.pending(task_id)} unresolved dependencies"
            )
        pooled = self.task_pool.remove(task_id)
        accesses: List[FinishAccessRecord] = []
        newly_ready: List[int] = []
        for address, _mode in merge_access_modes(pooled):
            table_index = self.table_for(address)
            released = self.tables[table_index].finish_access(address, task_id)
            kicked: List[int] = []
            for waiter in released:
                kicked.append(waiter.task_id)
                if self.dep_counts.decrement(waiter.task_id):
                    newly_ready.append(waiter.task_id)
            accesses.append(
                FinishAccessRecord(address=address, table_index=table_index, kicked_off=tuple(kicked))
            )
        self.dep_counts.remove(task_id)
        self.total_finished += 1
        return FinishResult(task_id=task_id, accesses=tuple(accesses), newly_ready=tuple(newly_ready))

    def reset(self) -> None:
        """Return the tracker to its initial empty state."""
        for table in self.tables:
            table.reset()
        self.dep_counts.reset()
        self.task_pool.reset()
        self.function_table.reset()
        self._in_flight.clear()
        self.total_inserted = 0
        self.total_finished = 0
