"""Objectives: map one candidate's simulated results to a score.

Every objective is *higher-is-better* (the search maximises), aggregates
across a candidate's grid cells with the geometric mean (the paper's
aggregation for speedups, and the right mean for ratios generally), and
reports the raw aggregates alongside the score so frontiers stay
interpretable:

``makespan``
    ``1e6 / geomean(makespan_us)`` — pure simulated performance.
``speedup``
    ``geomean(speedup_vs_serial)`` — the paper's speedup-over-serial
    definition (total work / makespan), robust across workloads of
    different sizes.
``area-speedup``
    ``geomean(speedup) / area_fraction`` with the area fraction taken
    from the Table I-calibrated FPGA model
    (:func:`repro.fpga.resources.estimate_for_manager`) — speedup per
    unit of fabric, the metric that penalises buying 58 % of the device
    for the last few percent of performance.  Defined for hardware
    managers only; a space containing software managers fails fast.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

from repro.analysis.factories import describe_factory
from repro.common.errors import ConfigurationError
from repro.fpga.resources import estimate_for_manager
from repro.system.results import MachineResult
from repro.tune.space import Candidate

__all__ = ["OBJECTIVES", "Objective", "geomean", "parse_objective"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    >>> geomean([2.0, 8.0])
    4.0
    """
    values = list(values)
    if not values:
        raise ConfigurationError("geomean needs at least one value")
    if any(value <= 0 for value in values):
        raise ConfigurationError(f"geomean needs positive values, got {values}")
    return math.exp(sum(math.log(value) for value in values) / len(values))


class Objective:
    """Base class: subclasses set ``name`` and implement :meth:`evaluate`."""

    name = "objective"

    def evaluate(self, candidate: Candidate,
                 results: Sequence[MachineResult]) -> Tuple[float, Dict[str, float]]:
        """Score ``candidate``'s results: ``(score, reported metrics)``."""
        raise NotImplementedError

    def validate(self, candidate: Candidate) -> None:
        """Reject candidates the objective is undefined for (fail fast,
        before any simulation is spent on them)."""


class MakespanObjective(Objective):
    """Raw simulated performance: inverse geomean makespan."""

    name = "makespan"

    def evaluate(self, candidate, results):
        gm = geomean(result.makespan_us for result in results)
        return 1e6 / gm, {"geomean_makespan_us": gm}


class SpeedupObjective(Objective):
    """Geomean speedup over serial execution (the paper's Figure 8)."""

    name = "speedup"

    def evaluate(self, candidate, results):
        gm = geomean(result.speedup_vs_serial for result in results)
        return gm, {"geomean_speedup": gm}


class AreaSpeedupObjective(Objective):
    """Speedup per fraction of FPGA fabric consumed (Table I model)."""

    name = "area-speedup"

    def _estimate(self, candidate: Candidate):
        return estimate_for_manager(describe_factory(candidate.factory))

    def validate(self, candidate: Candidate) -> None:
        if self._estimate(candidate) is None:
            raise ConfigurationError(
                f"the {self.name} objective is defined for hardware managers "
                f"only (nexus#/nexus++); {candidate.display!r} has no "
                "resource estimate")

    def evaluate(self, candidate, results):
        estimate = self._estimate(candidate)
        if estimate is None:  # pragma: no cover - validate() ran first
            raise ConfigurationError(f"no resource estimate for {candidate.display!r}")
        gm = geomean(result.speedup_vs_serial for result in results)
        area = estimate.area_fraction
        return gm / area, {
            "geomean_speedup": gm,
            "area_fraction": area,
            "total_utilization_pct": estimate.total_utilization_pct,
        }


#: Registry behind ``--objective`` (and :func:`parse_objective`).
OBJECTIVES: Dict[str, type] = {
    MakespanObjective.name: MakespanObjective,
    SpeedupObjective.name: SpeedupObjective,
    AreaSpeedupObjective.name: AreaSpeedupObjective,
}


def parse_objective(objective: "str | Objective") -> Objective:
    """Resolve an objective name (instances pass through).

    >>> parse_objective("speedup").name
    'speedup'
    """
    if isinstance(objective, Objective):
        return objective
    try:
        return OBJECTIVES[objective]()
    except KeyError:
        raise ConfigurationError(
            f"unknown objective {objective!r} "
            f"(known: {', '.join(sorted(OBJECTIVES))})") from None
