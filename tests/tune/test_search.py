"""The successive-halving driver: rungs, promotion, budget, cache reuse."""

from __future__ import annotations

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.runner import SweepRunner
from repro.tune.report import TuneReport
from repro.tune.search import SuccessiveHalving
from repro.tune.space import SearchSpace


def space(**overrides):
    defaults = dict(
        managers=("ideal", "nanos", "nexus#2@100", "nexus#6@100"),
        workloads=("microbench", "sparselu"),
        core_counts=(4,),
        seeds=(1, 2),
        scale=0.05,
        name="search-test",
    )
    defaults.update(overrides)
    return SearchSpace(**defaults)


def cached_runner(tmp_path, name="cache"):
    return SweepRunner(cache_dir=tmp_path / name)


class TestLadder:
    def test_halving_shrinks_the_frontier_each_rung(self, tmp_path):
        driver = SuccessiveHalving(space(), "makespan",
                                   runner=cached_runner(tmp_path))
        result = driver.run()
        sizes = [len(rung.frontier) for rung in result.rungs]
        assert sizes == [4, 2, 1]
        # Fidelity grows eta-fold per rung up to the full ladder.
        assert [len(rung.units) for rung in result.rungs] == [1, 2, 4]
        assert result.best is not None
        assert result.best.candidate.key == result.rungs[-1].survivors[0]

    def test_survivors_are_the_top_scored(self, tmp_path):
        driver = SuccessiveHalving(space(), "makespan",
                                   runner=cached_runner(tmp_path))
        result = driver.run()
        for rung in result.rungs[:-1]:
            keep = math.ceil(len(rung.frontier) / driver.eta)
            expected = tuple(entry.candidate.key
                             for entry in rung.frontier[:keep])
            assert rung.survivors == expected

    def test_ideal_wins_on_makespan(self, tmp_path):
        """Sanity: the no-overhead manager must beat every modelled one."""
        driver = SuccessiveHalving(space(), "makespan",
                                   runner=cached_runner(tmp_path))
        result = driver.run()
        assert result.best.candidate.display == "Ideal"

    def test_lone_survivor_jumps_to_full_fidelity(self, tmp_path):
        driver = SuccessiveHalving(space(managers=("ideal", "nanos")),
                                   "makespan", runner=cached_runner(tmp_path))
        result = driver.run()
        # Rung 0 halves 2 -> 1; the single survivor is then evaluated on
        # the complete ladder at once instead of climbing rung by rung.
        assert [len(rung.units) for rung in result.rungs] == [1, 4]

    def test_deterministic_across_runs(self, tmp_path):
        first = SuccessiveHalving(space(), "speedup",
                                  runner=cached_runner(tmp_path, "a")).run()
        second = SuccessiveHalving(space(), "speedup",
                                   runner=cached_runner(tmp_path, "b")).run()
        assert TuneReport(first).lines() == TuneReport(second).lines()


class TestCacheReuse:
    def test_rung_promotion_reuses_earlier_cells(self, tmp_path):
        driver = SuccessiveHalving(space(), "makespan",
                                   runner=cached_runner(tmp_path))
        result = driver.run()
        # Every rung after the first re-addresses its survivors' earlier
        # fidelity prefix: promotion is cache hits, not re-simulation.
        for rung in result.rungs[1:]:
            assert rung.cache_hits > 0
        # Scheduled cells = simulated + cached, exactly.
        assert result.total_cells == result.total_executed + result.total_cache_hits

    def test_warm_rerun_executes_zero_simulations(self, tmp_path):
        """The acceptance-criterion property: re-running the identical
        search against the same cache simulates nothing and reproduces
        the same winner, rung for rung."""
        cold = SuccessiveHalving(space(), "makespan",
                                 runner=cached_runner(tmp_path)).run()
        warm = SuccessiveHalving(space(), "makespan",
                                 runner=cached_runner(tmp_path)).run()
        assert cold.total_executed > 0
        assert warm.total_executed == 0
        assert warm.total_cache_hits == warm.total_cells == cold.total_cells

        def science(result):
            # Everything except the cache accounting (which legitimately
            # differs between a cold and a warm run) must be identical.
            rungs = []
            for rung in result.rungs:
                doc = rung.describe()
                doc.pop("executed")
                doc.pop("cache_hits")
                rungs.append(doc)
            return rungs, result.best.describe()

        assert science(warm) == science(cold)


class TestBudget:
    def test_budget_bounds_scheduled_cells(self, tmp_path):
        # 4 candidates x 1 unit = 4 cells for rung 0; rung 1 would need
        # 2 x 2 x 1 = 4 more. A budget of 6 funds only rung 0.
        driver = SuccessiveHalving(space(), "makespan", budget=6,
                                   runner=cached_runner(tmp_path))
        result = driver.run()
        assert result.budget_exhausted
        assert len(result.rungs) == 1
        assert result.total_cells <= 6
        # The best still comes from the last completed frontier.
        assert result.best.candidate.key == result.rungs[0].frontier[0].candidate.key

    def test_budget_counts_cells_not_executions(self, tmp_path):
        """Budget semantics must not depend on cache state: a warm search
        stops at the same rung as the cold one."""
        cold = SuccessiveHalving(space(), "makespan", budget=8,
                                 runner=cached_runner(tmp_path)).run()
        warm = SuccessiveHalving(space(), "makespan", budget=8,
                                 runner=cached_runner(tmp_path)).run()
        assert len(warm.rungs) == len(cold.rungs)
        assert warm.total_cells == cold.total_cells

    def test_budget_too_small_for_one_rung_fails_fast(self, tmp_path):
        with pytest.raises(ConfigurationError, match="first"):
            SuccessiveHalving(space(), "makespan", budget=3,
                              runner=cached_runner(tmp_path)).run()

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SuccessiveHalving(space(), eta=1)
        with pytest.raises(ConfigurationError):
            SuccessiveHalving(space(), min_units=0)
        with pytest.raises(ConfigurationError):
            SuccessiveHalving(space(), budget=0)

    def test_area_objective_validates_candidates_up_front(self):
        with pytest.raises(ConfigurationError, match="hardware"):
            SuccessiveHalving(space(), "area-speedup")


class TestSchedulerAxis:
    def test_mixed_schedulers_score_independently(self, tmp_path):
        """Survivor grouping: after halving, each (scheduler, topology)
        group runs as its own grid — no phantom cross-product cells."""
        driver = SuccessiveHalving(
            space(managers=("ideal", "nexus#2@100"),
                  schedulers=("fifo", "sjf")),
            "makespan", runner=cached_runner(tmp_path))
        result = driver.run()
        rung0 = result.rungs[0]
        assert len(rung0.frontier) == 4
        # 4 candidates x 1 unit x 1 core count = 4 cells, no more.
        assert rung0.cells == 4
        keys = {entry.candidate.key for entry in rung0.frontier}
        assert "Ideal|fifo|homogeneous" in keys
        assert "Ideal|sjf|homogeneous" in keys
