"""Synthetic workload generators.

These generators are not part of the paper's evaluation; they exist for
unit tests, property-based tests, ablation studies and the large-scale
streaming benchmarks that need traces with controlled structure: fully
independent tasks, serial chains, fork-join phases and random layered
DAGs.

Every generator exists in two forms: ``stream_*`` returns a replayable
:class:`~repro.trace.stream.TraceStream` that emits events lazily (the
fork-join and independent/chain streams allocate O(width) state, so
million-task traces stream with bounded memory), and ``generate_*`` is
the classic materialised API — a thin
:func:`~repro.trace.stream.materialize` over the stream.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.events import TraceEvent
from repro.trace.stream import EventEmitter, TraceStream, materialize
from repro.trace.task import Direction, Parameter
from repro.trace.trace import Trace
from repro.workloads.addressing import AddressSpace


def stream_independent(
    num_tasks: int,
    duration_us: float = 10.0,
    *,
    params_per_task: int = 1,
    seed: Optional[int] = None,
    name: str = "synthetic-independent",
) -> TraceStream:
    """``num_tasks`` fully independent tasks of equal duration, streamed."""
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    if duration_us < 0:
        raise ConfigurationError(f"duration_us must be >= 0, got {duration_us}")
    if params_per_task <= 0:
        raise ConfigurationError(f"params_per_task must be positive, got {params_per_task}")

    def events() -> Iterator[TraceEvent]:
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        for _ in range(num_tasks):
            yield emit.task("work", duration_us=duration_us,
                            outputs=space.alloc(params_per_task))
        yield emit.taskwait()

    return TraceStream(name, events,
                       metadata={"num_tasks": num_tasks, "duration_us": duration_us})


def generate_independent(
    num_tasks: int,
    duration_us: float = 10.0,
    *,
    params_per_task: int = 1,
    seed: Optional[int] = None,
    name: str = "synthetic-independent",
) -> Trace:
    """``num_tasks`` fully independent tasks of equal duration."""
    return materialize(stream_independent(
        num_tasks, duration_us, params_per_task=params_per_task, seed=seed, name=name))


def stream_chain(
    num_tasks: int,
    duration_us: float = 10.0,
    *,
    seed: Optional[int] = None,
    name: str = "synthetic-chain",
) -> TraceStream:
    """A strictly serial chain, streamed: task ``i`` depends on ``i-1``."""
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")

    def events() -> Iterator[TraceEvent]:
        space = AddressSpace(seed=seed)
        token = space.alloc_one()
        emit = EventEmitter()
        for _ in range(num_tasks):
            yield emit.task("link", duration_us=duration_us, inouts=[token])
        yield emit.taskwait()

    return TraceStream(name, events,
                       metadata={"num_tasks": num_tasks, "duration_us": duration_us})


def generate_chain(
    num_tasks: int,
    duration_us: float = 10.0,
    *,
    seed: Optional[int] = None,
    name: str = "synthetic-chain",
) -> Trace:
    """A strictly serial chain: task ``i`` depends on task ``i-1``."""
    return materialize(stream_chain(num_tasks, duration_us, seed=seed, name=name))


def stream_fork_join(
    num_phases: int,
    width: int,
    duration_us: float = 10.0,
    *,
    use_taskwait: bool = True,
    seed: Optional[int] = None,
    name: str = "synthetic-fork-join",
) -> TraceStream:
    """``num_phases`` phases of ``width`` independent tasks, streamed.

    Live generator state is O(width) — one reduction address plus one
    address per chunk — regardless of ``num_phases``, which is what makes
    this the workhorse of the million-task streaming benchmarks
    (``benchmarks/bench_large_scale.py``).
    """
    if num_phases <= 0 or width <= 0:
        raise ConfigurationError(f"num_phases and width must be positive, got {num_phases}, {width}")

    def events() -> Iterator[TraceEvent]:
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        reduction = space.alloc_one()
        chunk_addresses = space.alloc(width)
        for _phase in range(num_phases):
            for chunk in range(width):
                yield emit.task(
                    "phase_work",
                    duration_us=duration_us,
                    inputs=[reduction],
                    inouts=[chunk_addresses[chunk]],
                )
            if use_taskwait:
                yield emit.taskwait()
            yield emit.task("reduce", duration_us=duration_us, inouts=[reduction])
        yield emit.taskwait()

    return TraceStream(
        name, events,
        metadata={"num_phases": num_phases, "width": width, "duration_us": duration_us},
    )


def generate_fork_join(
    num_phases: int,
    width: int,
    duration_us: float = 10.0,
    *,
    use_taskwait: bool = True,
    seed: Optional[int] = None,
    name: str = "synthetic-fork-join",
) -> Trace:
    """``num_phases`` phases of ``width`` independent tasks with joins.

    When ``use_taskwait`` is false, the join is expressed through data
    dependencies on a shared reduction variable instead of a barrier,
    which exercises the WAR/WAW paths of the dependency trackers.
    """
    return materialize(stream_fork_join(
        num_phases, width, duration_us,
        use_taskwait=use_taskwait, seed=seed, name=name))


def stream_random_dag(
    num_tasks: int,
    *,
    max_predecessors: int = 3,
    duration_range_us: tuple[float, float] = (1.0, 50.0),
    write_probability: float = 0.7,
    seed: Optional[int] = None,
    name: str = "synthetic-random-dag",
) -> TraceStream:
    """A random data-dependency DAG, streamed.

    Unlike the other synthetic streams this one keeps O(num_tasks) state
    while generating (every produced address remains a candidate
    predecessor), which is inherent to the workload's definition.
    """
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    if max_predecessors < 0:
        raise ConfigurationError(f"max_predecessors must be >= 0, got {max_predecessors}")
    low, high = duration_range_us
    if low < 0 or high < low:
        raise ConfigurationError(f"invalid duration range {duration_range_us}")
    if not 0.0 <= write_probability <= 1.0:
        raise ConfigurationError(f"write_probability must be in [0, 1], got {write_probability}")

    def events() -> Iterator[TraceEvent]:
        rng = make_rng(seed, "random-dag")
        space = AddressSpace(seed=seed)
        emit = EventEmitter()
        produced: list[int] = []
        for index in range(num_tasks):
            output = space.alloc_one()
            params: list[Parameter] = []
            if produced and max_predecessors > 0:
                num_preds = int(rng.integers(0, max_predecessors + 1))
                if num_preds:
                    chosen = rng.choice(len(produced), size=min(num_preds, len(produced)),
                                        replace=False)
                    for pick in np.atleast_1d(chosen):
                        address = produced[int(pick)]
                        if rng.random() < write_probability:
                            params.append(Parameter(address=address, direction=Direction.IN))
                        else:
                            params.append(Parameter(address=address, direction=Direction.INOUT))
            params.append(Parameter(address=output, direction=Direction.OUT))
            duration = float(rng.uniform(low, high)) if high > low else float(low)
            yield emit.task(f"node_{index % 7}", duration_us=duration, params=params)
            produced.append(output)
        yield emit.taskwait()

    return TraceStream(
        name, events,
        metadata={
            "num_tasks": num_tasks,
            "max_predecessors": max_predecessors,
            "duration_range_us": list(duration_range_us),
        },
    )


def generate_random_dag(
    num_tasks: int,
    *,
    max_predecessors: int = 3,
    duration_range_us: tuple[float, float] = (1.0, 50.0),
    write_probability: float = 0.7,
    seed: Optional[int] = None,
    name: str = "synthetic-random-dag",
) -> Trace:
    """A random DAG expressed through data dependencies.

    Each task writes one fresh output address and reads up to
    ``max_predecessors`` addresses produced by earlier tasks, chosen
    uniformly at random; with probability ``1 - write_probability`` a
    "read" parameter is instead declared ``inout``, exercising WAR/WAW
    edges.  Barriers are not used, so the trace's parallelism is purely
    data-driven.
    """
    return materialize(stream_random_dag(
        num_tasks,
        max_predecessors=max_predecessors,
        duration_range_us=duration_range_us,
        write_probability=write_probability,
        seed=seed,
        name=name,
    ))
