"""Dependence-counts table.

Every in-flight task has a dependence count: the number of addresses it
is still waiting on.  In Nexus# the count is assembled by the Dependence
Counts Arbiter from the per-task-graph partial counts (the *Dep. Counts
Buffers* and *Sim. Tasks Dep. Counts Buffer* of Figure 2) and stored in
the global *Dep. Counts Table*; in Nexus++ a single table holds it
directly.  This module implements the table itself; the arbiter timing
lives with the manager models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import SimulationError


@dataclass
class DepCountEntry:
    """Book-keeping for one in-flight task."""

    task_id: int
    pending: int
    params_seen: int = 0
    params_total: int = 0

    @property
    def is_ready(self) -> bool:
        return self.pending == 0


class DependenceCountsTable:
    """Tracks the outstanding dependence count of every in-flight task."""

    def __init__(self, name: str = "dep-counts") -> None:
        self.name = name
        self._entries: Dict[int, DepCountEntry] = {}
        self.peak_entries = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._entries

    def register(self, task_id: int, pending: int, params_total: int = 0) -> DepCountEntry:
        """Create the entry for a newly inserted task."""
        if task_id in self._entries:
            raise SimulationError(f"{self.name}: task {task_id} registered twice")
        if pending < 0:
            raise SimulationError(f"{self.name}: negative dependence count {pending} for task {task_id}")
        entry = DepCountEntry(task_id=task_id, pending=pending, params_total=params_total)
        self._entries[task_id] = entry
        self.peak_entries = max(self.peak_entries, len(self._entries))
        return entry

    def pending(self, task_id: int) -> int:
        """Outstanding dependence count of ``task_id``."""
        entry = self._entries.get(task_id)
        if entry is None:
            raise SimulationError(f"{self.name}: task {task_id} is not in flight")
        return entry.pending

    def decrement(self, task_id: int, amount: int = 1) -> bool:
        """Decrease the count of ``task_id``; return ``True`` when it hits zero."""
        entry = self._entries.get(task_id)
        if entry is None:
            raise SimulationError(f"{self.name}: decrement for unknown task {task_id}")
        if amount < 0:
            raise SimulationError(f"{self.name}: negative decrement {amount}")
        entry.pending -= amount
        if entry.pending < 0:
            raise SimulationError(
                f"{self.name}: dependence count of task {task_id} went negative ({entry.pending})"
            )
        return entry.pending == 0

    def remove(self, task_id: int) -> None:
        """Delete the entry of a finished task."""
        if task_id not in self._entries:
            raise SimulationError(f"{self.name}: removing unknown task {task_id}")
        del self._entries[task_id]

    def ready_tasks(self) -> list[int]:
        """Ids of in-flight tasks whose count is currently zero."""
        return [t for t, e in self._entries.items() if e.pending == 0]

    def reset(self) -> None:
        self._entries.clear()
        self.peak_entries = 0
