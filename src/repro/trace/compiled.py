"""Compiled per-trace access programs.

The dependency engine answers one question per parameter of every
submitted task: *which address, accessed how, lands in which task
graph?*  Asking it with raw 48-bit addresses means re-hashing the same
addresses and re-merging the same parameter lists on every submission of
every run — pure overhead when the trace is known up front.

:class:`CompiledAccessProgram` moves that work to compile time, once per
trace:

* every distinct parameter address is *interned* to a dense integer id
  (``0 .. num_addresses-1``, in first-appearance order), so downstream
  state can live in flat arrays indexed by id instead of hash tables
  keyed by 48-bit addresses;
* every task's parameter list is *deduplicated* into its access program —
  one ``(address_id, direction-flags)`` pair per distinct address, first
  occurrence order preserved, flags OR-merged exactly like the hardware
  merges duplicate pragma clauses — and stored in flat arrays
  (``offsets`` + per-access columns) addressed by task slot.

The program is pure integers: it knows nothing about managers, table
counts or hash functions.  Distribution-specific resolutions (address id
→ task-graph index, set index, ...) are layered on top by
:meth:`repro.taskgraph.tracker.DependencyTracker.bind_program`, which
caches them in :attr:`CompiledAccessProgram.resolution_cache` so every
tracker with the same distribution key shares one resolved program.

Programs are cached on the owning :class:`~repro.trace.trace.Trace` (see
:meth:`Trace.access_program`) under a ``_compiled*`` attribute, which
``Trace.__getstate__`` already excludes from pickles.

Programs are also *growable*: :meth:`CompiledAccessProgram.add_task`
interns one task incrementally, appending to every flat array without
moving existing ids or slots.  Dynamic runs (tasks spawned while the
machine is running; see :mod:`repro.trace.dynamic`) build a fresh empty
program per run and extend it task by task, and the tracker resolutions
layered on top extend themselves lazily to match.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.task import Direction, TaskDescriptor

#: Direction flags of one access: bit 0 = reads, bit 1 = writes.
FLAG_READS = 1
FLAG_WRITES = 2
FLAG_READWRITE = FLAG_READS | FLAG_WRITES

#: Direction -> flag bits (module-level so compilation is one dict hit).
_FLAG_OF_DIRECTION = {
    Direction.IN: FLAG_READS,
    Direction.OUT: FLAG_WRITES,
    Direction.INOUT: FLAG_READWRITE,
}


class CompiledAccessProgram:
    """Interned, deduplicated access lists of one trace, in flat arrays.

    Attributes
    ----------
    addresses:
        Dense id → raw 48-bit address (first-appearance order).
    id_of:
        Raw address → dense id (the interning map).
    task_ids:
        Task slot → task id, in submission order.
    offsets:
        ``offsets[slot] .. offsets[slot+1]`` delimit task ``slot``'s
        accesses in the flat columns below (``len == num_tasks + 1``).
    addr_ids / flags:
        Flat per-access columns: dense address id and direction flags
        (:data:`FLAG_READS` / :data:`FLAG_WRITES` bits).
    resolution_cache:
        Scratch dict for layers above (the dependency tracker caches its
        per-distribution resolved programs here, keyed by distribution
        key and table geometry).
    """

    __slots__ = ("addresses", "id_of", "task_ids", "offsets", "addr_ids",
                 "flags", "_slot_of", "resolution_cache")

    def __init__(self, tasks: Iterable[TaskDescriptor] = ()) -> None:
        # Bulk compilation stays a tight local-variable loop: this runs
        # once per trace on the static hot path (add_task — the growable
        # entry point for dynamic runs — pays method-call and duplicate
        # checks the bulk path does not need, since Trace already
        # guarantees unique ids).
        addresses: List[int] = []
        id_of: Dict[int, int] = {}
        task_ids: List[int] = []
        offsets: List[int] = [0]
        addr_ids: List[int] = []
        flags: List[int] = []
        flag_of = _FLAG_OF_DIRECTION
        for task in tasks:
            task_ids.append(task.task_id)
            merged: Dict[int, int] = {}
            for param in task.params:
                address = param.address
                flag = flag_of[param.direction]
                previous = merged.get(address)
                if previous is None:
                    merged[address] = flag
                elif previous != flag:
                    # Any two distinct directions union to read-write,
                    # exactly like merge_access_modes.
                    merged[address] = FLAG_READWRITE
            for address, flag in merged.items():
                dense = id_of.get(address)
                if dense is None:
                    dense = len(addresses)
                    id_of[address] = dense
                    addresses.append(address)
                addr_ids.append(dense)
                flags.append(flag)
            offsets.append(len(addr_ids))
        self.addresses = addresses
        self.id_of = id_of
        self.task_ids = task_ids
        self.offsets = offsets
        self.addr_ids = addr_ids
        self.flags = flags
        # Dense task ids (the TraceBuilder invariant) index slots directly;
        # sparse ids go through an explicit map.
        if task_ids == list(range(len(task_ids))):
            self._slot_of: Optional[Dict[int, int]] = None
        else:
            self._slot_of = {task_id: slot for slot, task_id in enumerate(task_ids)}
        self.resolution_cache: Dict[object, object] = {}

    def add_task(self, task: TaskDescriptor) -> int:
        """Intern ``task``'s accesses incrementally; return its slot.

        This is how dynamic runs keep the compiled dependency-resolution
        path: the machine interns each task the moment it is spawned, and
        the tracker's bound resolution extends itself lazily (appending
        rows and addresses only — existing slots and address ids never
        move, so resolutions shared across trackers stay valid).
        """
        task_id = task.task_id
        slot_of = self._slot_of
        if slot_of is not None:
            if task_id in slot_of:
                raise ValueError(f"task {task_id} is already in the access program")
        elif task_id < len(self.task_ids):
            raise ValueError(f"task {task_id} is already in the access program")
        addresses = self.addresses
        id_of = self.id_of
        addr_ids = self.addr_ids
        flags = self.flags
        flag_of = _FLAG_OF_DIRECTION
        slot = len(self.task_ids)
        self.task_ids.append(task_id)
        merged: Dict[int, int] = {}
        for param in task.params:
            address = param.address
            flag = flag_of[param.direction]
            previous = merged.get(address)
            if previous is None:
                merged[address] = flag
            elif previous != flag:
                # Any two distinct directions union to read-write,
                # exactly like merge_access_modes.
                merged[address] = FLAG_READWRITE
        for address, flag in merged.items():
            dense = id_of.get(address)
            if dense is None:
                dense = len(addresses)
                id_of[address] = dense
                addresses.append(address)
            addr_ids.append(dense)
            flags.append(flag)
        self.offsets.append(len(addr_ids))
        if slot_of is not None:
            slot_of[task_id] = slot
        elif task_id != slot:
            # First sparse id: fall back to the explicit map.
            self._slot_of = {tid: s for s, tid in enumerate(self.task_ids)}
        return slot

    # -- geometry ----------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """Number of task access programs compiled."""
        return len(self.task_ids)

    @property
    def num_addresses(self) -> int:
        """Number of distinct interned addresses."""
        return len(self.addresses)

    @property
    def num_accesses(self) -> int:
        """Total deduplicated accesses over all tasks."""
        return len(self.addr_ids)

    def slot(self, task_id: int) -> int:
        """Task slot of ``task_id``, or ``-1`` when not in the program."""
        slot_of = self._slot_of
        if slot_of is None:
            return task_id if 0 <= task_id < len(self.task_ids) else -1
        return slot_of.get(task_id, -1)

    def task_accesses(self, task_id: int) -> List[Tuple[int, int]]:
        """``(address_id, flags)`` pairs of one task (convenience view)."""
        slot = self.slot(task_id)
        if slot < 0:
            raise KeyError(f"task {task_id} is not in the access program")
        start, end = self.offsets[slot], self.offsets[slot + 1]
        return list(zip(self.addr_ids[start:end], self.flags[start:end]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledAccessProgram(tasks={self.num_tasks}, "
            f"addresses={self.num_addresses}, accesses={self.num_accesses})"
        )


def compile_access_program(tasks: Iterable[TaskDescriptor]) -> CompiledAccessProgram:
    """Compile an iterable of task descriptors into an access program."""
    return CompiledAccessProgram(tasks)
