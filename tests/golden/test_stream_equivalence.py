"""Stream-vs-materialised golden equivalence.

The streaming replay path (`Machine.run_stream`) must produce
**byte-identical** makespans to the materialised path (`Machine.run`)
— the golden-trace guarantee extended to streaming.  Every committed
golden trace is replayed three ways under all four golden managers:

* materialised (the classic pinned numbers),
* streamed straight from the in-memory trace,
* streamed from a chunked JSONL file on disk,

and all three must equal the committed expected makespans exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.system.machine import simulate_stream
from repro.trace.serialization import load_trace, open_trace_stream, write_trace_stream
from repro.workloads.registry import STREAMS

from golden_config import GOLDEN_MANAGERS

GOLDEN_DIR = Path(__file__).parent
DATA_DIR = GOLDEN_DIR / "data"
EXPECTED = json.loads((GOLDEN_DIR / "expected_makespans.json").read_text(encoding="utf-8"))

TRACE_KEYS = sorted(EXPECTED["traces"])
MANAGER_KEYS = list(GOLDEN_MANAGERS)


@pytest.mark.parametrize("manager_key", MANAGER_KEYS)
@pytest.mark.parametrize("key", TRACE_KEYS)
def test_streamed_replay_matches_golden_makespans(key, manager_key):
    trace = load_trace(DATA_DIR / f"{key}.json.gz")
    expected = EXPECTED["traces"][key]["makespans_us"][manager_key]
    factory = GOLDEN_MANAGERS[manager_key]
    result = simulate_stream(trace, factory(), num_cores=EXPECTED["cores"])
    assert result.makespan_us == expected, (
        f"{manager_key} on golden {key}: streamed makespan {result.makespan_us!r} != "
        f"materialised golden {expected!r} — the streaming path diverged from run()"
    )
    assert result.num_tasks == EXPECTED["traces"][key]["num_tasks"]


@pytest.mark.parametrize("key", TRACE_KEYS)
def test_chunked_disk_replay_matches_golden_makespans(key, tmp_path):
    """Golden trace -> chunked JSONL -> lazy stream -> simulate: exact."""
    trace = load_trace(DATA_DIR / f"{key}.json.gz")
    path = write_trace_stream(trace, tmp_path / f"{key}.jsonl.gz", chunk_size=64)
    stream = open_trace_stream(path)
    factory = GOLDEN_MANAGERS["nexussharp"]
    expected = EXPECTED["traces"][key]["makespans_us"]["nexussharp"]
    result = simulate_stream(stream, factory(), num_cores=EXPECTED["cores"])
    assert result.makespan_us == expected


def test_small_lookahead_does_not_change_schedules():
    """The lookahead window is an IO amortisation, not a semantic knob."""
    trace = load_trace(DATA_DIR / "h264dec.json.gz")
    expected = EXPECTED["traces"]["h264dec"]["makespans_us"]["nexuspp"]
    factory = GOLDEN_MANAGERS["nexuspp"]
    for lookahead in (1, 7, 4096):
        result = simulate_stream(trace, factory(), num_cores=EXPECTED["cores"],
                                 lookahead=lookahead)
        assert result.makespan_us == expected, f"lookahead={lookahead}"


@pytest.mark.parametrize("name", sorted(STREAMS))
def test_registry_streams_materialize_to_registry_traces(name):
    """get_workload_stream(...) and get_workload(...) are byte-identical."""
    from repro.trace.serialization import trace_digest
    from repro.trace.stream import materialize
    from repro.workloads.registry import get_workload, get_workload_stream

    scale = 0.01 if name.startswith(("gaussian", "h264dec")) else 0.002
    a = get_workload(name, scale=scale, seed=20150525)
    b = materialize(get_workload_stream(name, scale=scale, seed=20150525))
    assert trace_digest(a) == trace_digest(b)
