"""Table IV — maximum scalability per benchmark and task-graph manager.

Sweeps every Table II workload over core counts for Nanos, Nexus++ and
Nexus# (6 task graphs at the synthesis frequency) and reports the maximum
speedup next to the paper's Table IV.  The workloads are generated at a
reduced scale (structure preserved), so absolute numbers are smaller than
the paper's; the assertions check the *ranking* the paper reports for the
fine-grained workloads, which is the paper's headline claim.
"""

import pytest

from repro.analysis.tables import PAPER_TABLE4, table4_report

#: Core counts swept (a subset of the paper's 1..256 to keep the run short).
CORE_COUNTS = (1, 8, 32, 128)


def test_table4_maximum_scalability(benchmark, report_recorder, scale, seed):
    report = benchmark.pedantic(
        table4_report,
        kwargs={"scale": scale, "seed": seed, "core_counts": CORE_COUNTS},
        rounds=1, iterations=1,
    )
    report_recorder("table4_max_speedup", report["text"])
    studies = report["studies"]

    def max_speedup(workload, manager):
        return studies[workload].curves[manager].max_speedup

    # Headline claim: for the fine-grained h264dec configurations the
    # hardware managers beat Nanos, and Nexus# beats Nexus++ (which lacks
    # `taskwait on` support).
    for workload in ("h264dec-1x1-10f", "h264dec-2x2-10f"):
        nanos = max_speedup(workload, "Nanos")
        nexuspp = max_speedup(workload, "Nexus++")
        nexussharp = max_speedup(workload, "Nexus# 6TG")
        assert nanos < nexuspp < nexussharp, (
            f"{workload}: expected Nanos < Nexus++ < Nexus#, got "
            f"{nanos:.2f} / {nexuspp:.2f} / {nexussharp:.2f}"
        )
    # Nanos loses on the finest granularity (paper: 0.7x).
    assert max_speedup("h264dec-1x1-10f", "Nanos") < 1.5
    # Coarse-grained workloads: every manager close to ideal at 32 cores.
    for workload in ("c-ray", "rot-cc"):
        ideal = max_speedup(workload, "Ideal")
        assert max_speedup(workload, "Nexus# 6TG") >= 0.8 * ideal
    # Every generated row is present for the paper comparison.
    assert set(studies) == set(PAPER_TABLE4)
