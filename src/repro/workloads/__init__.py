"""Workload (trace) generators.

The paper evaluates Nexus# with traces collected from Starbench
benchmarks on a 40-core Xeon E7-4870 (Table II), a Gaussian-elimination
micro-benchmark (Table III / Figure 9) and a 5-task micro-benchmark
modelled after Yazdanpanah et al. [19] (Section IV-E).  Those traces are
not publicly available, so this package generates synthetic traces with
the same *structure*: task counts, dependency patterns, parameter counts
and duration statistics are reproduced from the descriptions in
Section V-A and the numbers in Tables II/III.

Every generator accepts:

* ``scale`` — multiplies the task count (0 < scale <= 1 shrinks the
  workload for fast test / CI runs while keeping the dependency shape);
* ``seed`` — controls the duration jitter and address randomisation;
* workload-specific knobs documented per module.

The :data:`WORKLOADS` registry maps the paper's benchmark names (e.g.
``"h264dec-1x1-10f"``) to ready-to-call generators using the paper's
parameters.

Every generator exists in two byte-identical forms: ``generate_*``
materialises a :class:`~repro.trace.trace.Trace`, while ``stream_*``
returns a lazy, replayable :class:`~repro.trace.stream.TraceStream`
whose live memory stays bounded regardless of task count (see
``docs/streaming.md``).
"""

from repro.workloads.addressing import AddressSpace
from repro.workloads.cray import generate_cray, stream_cray
from repro.workloads.rotcc import generate_rotcc, stream_rotcc
from repro.workloads.sparselu import generate_sparselu, stream_sparselu
from repro.workloads.streamcluster import generate_streamcluster, stream_streamcluster
from repro.workloads.h264dec import H264Geometry, generate_h264dec, stream_h264dec
from repro.workloads.gaussian import (
    generate_gaussian_elimination,
    gaussian_task_count,
    gaussian_avg_flops,
    stream_gaussian_elimination,
)
from repro.workloads.microbench import generate_microbenchmark, stream_microbenchmark
from repro.workloads.synthetic import (
    generate_chain,
    generate_fork_join,
    generate_independent,
    generate_random_dag,
    stream_chain,
    stream_fork_join,
    stream_independent,
    stream_random_dag,
)
from repro.workloads.recursive import (
    fib_program,
    nqueens_program,
    recursive_sort_program,
    strassen_program,
)
from repro.workloads.fuzz import FuzzSpec, fuzz_program
from repro.workloads.registry import (
    DYNAMIC_PROGRAMS,
    STREAMS,
    WORKLOADS,
    get_dynamic_program,
    get_workload,
    get_workload_stream,
    is_dynamic_workload,
    list_workloads,
    paper_table2_workloads,
)

__all__ = [
    "AddressSpace",
    "generate_cray",
    "generate_rotcc",
    "generate_sparselu",
    "generate_streamcluster",
    "generate_h264dec",
    "H264Geometry",
    "generate_gaussian_elimination",
    "gaussian_task_count",
    "gaussian_avg_flops",
    "generate_microbenchmark",
    "generate_random_dag",
    "generate_independent",
    "generate_chain",
    "generate_fork_join",
    "stream_cray",
    "stream_rotcc",
    "stream_sparselu",
    "stream_streamcluster",
    "stream_h264dec",
    "stream_gaussian_elimination",
    "stream_microbenchmark",
    "stream_random_dag",
    "stream_independent",
    "stream_chain",
    "stream_fork_join",
    "fib_program",
    "nqueens_program",
    "recursive_sort_program",
    "strassen_program",
    "FuzzSpec",
    "fuzz_program",
    "DYNAMIC_PROGRAMS",
    "STREAMS",
    "WORKLOADS",
    "get_dynamic_program",
    "get_workload",
    "get_workload_stream",
    "is_dynamic_workload",
    "list_workloads",
    "paper_table2_workloads",
]
