"""Tests for the content-addressed result cache."""

import threading

from repro.experiments.cache import ResultCache
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestResultCache:
    def test_miss_then_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(KEY) is None
        document = {"makespan_us": 12.5, "nested": {"a": [1, 2]}}
        cache.put(KEY, document)
        assert KEY in cache
        assert cache.get(KEY) == document

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        assert (tmp_path / KEY[:2] / f"{KEY}.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_non_object_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        path.parent.mkdir(parents=True)
        path.write_text("[1,2,3]", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        cache.put(OTHER, {"y": 2})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(KEY) is None

    def test_corrupt_entry_is_deleted_on_read(self, tmp_path):
        """A torn entry must not survive to poison every later warm run."""
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        path.write_text('{"makespan_us": 12.', encoding="utf-8")
        assert cache.get(KEY) is None
        assert not path.exists()
        # The store is usable again immediately.
        cache.put(KEY, {"x": 2})
        assert cache.get(KEY) == {"x": 2}

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"x": 1})
        orphan = tmp_path / KEY[:2] / "deadbeef.tmp"
        orphan.write_text("partial", encoding="utf-8")
        assert cache.clear() == 1
        assert not orphan.exists()

    def test_corruption_recovery_end_to_end(self, tmp_path):
        """A worker killed mid-write leaves a truncated entry; the next
        (warm) sweep must treat it as a miss, re-simulate exactly that
        cell, repair the store and still emit byte-identical JSONL."""
        spec = SweepSpec(workloads=["microbench"], managers=["ideal"],
                         core_counts=[1, 2], scale=0.05)
        cache = ResultCache(tmp_path / "cache")
        cold = SweepRunner(cache=cache).run(spec, jsonl_path=tmp_path / "cold.jsonl")
        assert cold.executed == 2
        # Truncate one entry in place — a torn write a crashed worker
        # could have produced without the atomic-rename discipline.
        victim = next(iter((tmp_path / "cache").glob("*/*.json")))
        victim.write_text(victim.read_text(encoding="utf-8")[:17], encoding="utf-8")
        warm = SweepRunner(cache=cache).run(spec, jsonl_path=tmp_path / "warm.jsonl")
        assert warm.executed == 1  # only the corrupted cell re-ran
        assert warm.cache_hits == 1
        assert (tmp_path / "cold.jsonl").read_bytes() == (tmp_path / "warm.jsonl").read_bytes()
        # The store healed: a third run is fully warm.
        again = SweepRunner(cache=cache).run(spec)
        assert again.executed == 0

    def test_corrupt_read_racing_fresh_put_keeps_the_fresh_entry(self, tmp_path):
        """The reader-vs-publisher race the quarantine rename exists for.

        A reader decodes a corrupt entry and goes to delete it; before
        it does, a writer atomically publishes a *fresh good* entry at
        the same path.  A bare unlink would destroy that fresh entry
        (and a later warm run would re-simulate it); the quarantine
        discipline must instead notice the race, restore the fresh
        document and return it.
        """
        fresh = {"makespan_us": 42.0, "source": "fresh-publish"}

        class RacingCache(ResultCache):
            def _heal(self, key, path):
                # Deterministically interleave the concurrent publish
                # exactly between the corrupt read and the quarantine
                # rename — the widest window of the race.
                ResultCache.put(self, key, fresh)
                return ResultCache._heal(self, key, path)

        cache = RacingCache(tmp_path)
        cache.put(KEY, {"x": 1})
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        path.write_text("{torn", encoding="utf-8")
        # The racing reader must serve the freshly-published document...
        assert cache.get(KEY) == fresh
        # ...and leave it in the store (no resurrection of the corpse,
        # no deletion of the fresh entry, no stray quarantine files).
        assert ResultCache(tmp_path).get(KEY) == fresh
        assert [p for p in path.parent.iterdir() if p.suffix == ".tmp"] == []

    def test_corrupt_read_racing_concurrent_readers_never_lose_a_put(self, tmp_path):
        """Hammer get() (over a corrupt entry) against put() from
        threads: whatever interleaving happens, a reader must only ever
        observe ``None`` or a complete published document — never a
        partial entry — and the final state must hold the last put."""
        cache = ResultCache(tmp_path)
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        good = {"makespan_us": 7.0}
        observed = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                document = cache.get(KEY)
                if document is not None:
                    observed.append(document)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                cache.put(KEY, good)
                path.write_text("{torn", encoding="utf-8")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert all(document == good for document in observed)
        # Heal the final torn state; afterwards a put sticks.
        cache.get(KEY)
        cache.put(KEY, good)
        assert cache.get(KEY) == good

    def test_put_overwrites_atomically(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 2})
        assert cache.get(KEY) == {"v": 2}
        # No stray temp files left behind.
        leftovers = [p for p in (tmp_path / KEY[:2]).iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
