"""TuneReport round-trip, frontier rendering and the CLI entry point."""

from __future__ import annotations

import json

import pytest

from repro.analysis.frontier import frontier_table, render_tune_report
from repro.common.errors import ConfigurationError
from repro.experiments.runner import SweepRunner
from repro.tune.cli import main
from repro.tune.report import TUNE_REPORT_VERSION, TuneReport
from repro.tune.search import SuccessiveHalving, TuneResult
from repro.tune.space import SearchSpace


@pytest.fixture(scope="module")
def finished(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("tune-report")
    space = SearchSpace(
        managers=("ideal", "nexus#2@100"),
        workloads=("microbench",),
        core_counts=(2,),
        seeds=(1, 2),
        scale=0.05,
        name="report-test",
    )
    runner = SweepRunner(cache_dir=tmp / "cache")
    return SuccessiveHalving(space, "makespan", runner=runner).run()


class TestTuneReport:
    def test_roundtrip(self, finished, tmp_path):
        path = TuneReport(finished).write(tmp_path / "tune.jsonl")
        document = TuneReport.load(path)
        assert document["header"]["version"] == TUNE_REPORT_VERSION
        assert document["header"]["objective"] == "makespan"
        assert len(document["rungs"]) == len(finished.rungs)
        best = document["best"]
        assert best["best"]["candidate"]["display"] == finished.best.candidate.display
        assert best["total_cells"] == finished.total_cells

    def test_lines_are_canonical_json(self, finished):
        for line in TuneReport(finished).lines():
            assert json.loads(line)["type"] in ("header", "rung", "best")

    def test_rung_records_carry_the_frontier(self, finished, tmp_path):
        path = TuneReport(finished).write(tmp_path / "tune.jsonl")
        rung0 = TuneReport.load(path)["rungs"][0]
        assert [entry["candidate"]["display"] for entry in rung0["frontier"]]
        assert rung0["cells"] == rung0["executed"] + rung0["cache_hits"]

    def test_unfinished_result_rejected(self, finished):
        unfinished = TuneResult(space=finished.space, objective_name="makespan",
                                eta=2, budget=None)
        with pytest.raises(ConfigurationError):
            TuneReport(unfinished)

    def test_incomplete_file_rejected(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text('{"type": "header", "version": 1}\n')
        with pytest.raises(ConfigurationError):
            TuneReport.load(path)


class TestFrontierRendering:
    def test_frontier_table_ranks_and_labels(self, finished):
        table = frontier_table(
            [entry.describe() for entry in finished.rungs[0].frontier],
            title="rung 0")
        assert "rung 0" in table
        assert "Ideal" in table and "Nexus# 2TG@100MHz" in table
        assert "geomean_makespan_us" in table

    def test_render_tune_report_names_the_winner(self, finished, tmp_path):
        path = TuneReport(finished).write(tmp_path / "tune.jsonl")
        text = render_tune_report(TuneReport.load(path))
        assert "best: " in text
        assert finished.best.candidate.display in text
        assert "rung 0" in text


class TestCli:
    def test_search_writes_a_report(self, tmp_path, capsys):
        report_path = tmp_path / "cli.jsonl"
        code = main([
            "search", "--workloads", "microbench",
            "--managers", "ideal", "nexus#2@100",
            "--cores", "2", "--scale", "0.05", "--seeds", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--report", str(report_path), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final frontier" in out and "best:" in out
        document = TuneReport.load(report_path)
        assert document["best"]["best"]["candidate"]["display"] == "Ideal"

    def test_tg_geometry_flags_compile_the_axis(self, tmp_path, capsys):
        code = main([
            "search", "--workloads", "microbench",
            "--tg", "1", "2", "--geometries", "256x8", "16x2",
            "--frequency", "100",
            "--cores", "2", "--scale", "0.05", "--seeds", "1",
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Nexus# 1TG@100MHz" in out or "Nexus# 2TG@100MHz" in out

    def test_report_subcommand_renders(self, tmp_path, capsys):
        report_path = tmp_path / "cli.jsonl"
        assert main([
            "search", "--workloads", "microbench", "--managers", "ideal",
            "--cores", "2", "--scale", "0.05", "--seeds", "1",
            "--report", str(report_path), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(report_path)]) == 0
        assert "best: Ideal" in capsys.readouterr().out

    def test_configuration_errors_exit_2(self, tmp_path, capsys):
        code = main([
            "search", "--workloads", "microbench",
            "--managers", "nexus#lots", "--quiet",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_chaos_needs_the_fabric(self, capsys):
        code = main([
            "search", "--workloads", "microbench", "--managers", "ideal",
            "--chaos-seed", "7", "--quiet",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err
