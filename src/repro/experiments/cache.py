"""Content-addressed on-disk result cache.

Each cached entry is one :class:`~repro.system.results.MachineResult`,
stored as canonical JSON under ``<root>/<key[:2]>/<key>.json`` where
``key`` is :meth:`RunPoint.cache_key` — a SHA-256 hash of the complete
point configuration.  Because the key is derived from content, repeated
sweeps are incremental for free: only grid cells whose configuration
actually changed (or never ran) are simulated again.

The cache doubles as the **shared result store** of the distributed
sweep fabric (:mod:`repro.distributed`): every socket worker publishes
each finished cell into it, and the scheduler consults it before
dispatching, so any worker's result is reusable by all and a warm
re-run does zero simulations.  That sharing is what makes crash safety
non-negotiable:

* writes go to a temp file in the entry's own directory and are
  published with an atomic ``os.replace`` — a worker killed (SIGKILL)
  mid-write can never leave a truncated entry that a warm run would
  trust;
* reads treat anything undecodable as a miss **and delete it**
  (:meth:`ResultCache.get` self-heals), so an entry corrupted by an
  unclean filesystem is re-simulated and repaired instead of poisoning
  every later warm run — and the deletion is race-safe: the corrupt
  entry is atomically renamed aside and re-examined before anything is
  unlinked, so a reader that raced a concurrent ``put`` can never
  destroy the freshly-published good entry (it restores and returns it
  instead);
* orphaned ``*.tmp`` files (a writer killed before its rename) are
  swept out by :meth:`ResultCache.clear` and ignored everywhere else.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.trace.serialization import canonical_json_line


class ResultCache:
    """Filesystem-backed map from cache key to result-JSON document."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached result document, or ``None`` on a miss.

        A corrupt entry (torn write, bad JSON, non-object document) is a
        miss — and is deleted, so the re-simulated result can repair the
        store instead of hitting the same carcass on every warm run.

        Deletion is race-safe against concurrent :meth:`put` publishes:
        a bare ``unlink`` after a corrupt read could destroy a *good*
        entry that a writer renamed into place between our read and our
        delete.  Instead the entry is atomically renamed into a private
        quarantine file and re-examined — if the quarantined bytes
        parse (we raced a fresh publish), the entry is restored and
        returned; only bytes this reader has actually seen to be
        corrupt are ever unlinked.
        """
        path = self._path(key)
        document = self._read_document(path)
        if document is not None:
            return document
        if not path.exists():
            return None
        return self._heal(key, path)

    @staticmethod
    def _read_document(path: Path) -> Optional[Dict[str, Any]]:
        """Read and decode one entry; ``None`` on missing or corrupt."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            return None
        return document if isinstance(document, dict) else None

    def _heal(self, key: str, path: Path) -> Optional[Dict[str, Any]]:
        """Quarantine a corrupt entry, re-examine it, restore if it was
        actually a fresh publish this reader raced.

        Separated out so tests can interleave a concurrent ``put``
        between the corrupt read and the quarantine rename.
        """
        fd, quarantine = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            os.replace(path, quarantine)
        except OSError:
            # Someone else already healed (or deleted) it.
            try:
                os.unlink(quarantine)
            except OSError:
                pass
            return self._read_document(path)
        document = self._read_document(Path(quarantine))
        if document is not None:
            # The rename grabbed a *fresh* publish, not the corpse we
            # read: put it back (atomically) and serve it.
            self.put(key, document)
            try:
                os.unlink(quarantine)
            except OSError:
                pass
            return document
        try:
            os.unlink(quarantine)
        except OSError:
            pass
        return None

    def put(self, key: str, document: Dict[str, Any]) -> Path:
        """Store ``document`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(canonical_json_line(document))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; return the number removed.

        Orphaned ``*.tmp`` files (a writer killed between ``mkstemp``
        and its atomic rename) are swept out too, but do not count.
        """
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob("*/*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed
