"""Tests for the FPGA resource/frequency model (Table I)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.fpga.resources import (
    ZC706_DEVICE,
    estimate_nexus_pp,
    estimate_nexus_sharp,
    paper_table1_rows,
    table1,
)


class TestCalibrationAgainstTable1:
    @pytest.mark.parametrize("num_tg", [1, 2, 4, 6, 8])
    def test_percentages_match_paper_within_one_point(self, num_tg):
        paper = paper_table1_rows()[f"Nexus# {num_tg} TG" + ("s" if num_tg > 1 else "")]
        estimate = estimate_nexus_sharp(num_tg)
        assert abs(round(estimate.register_pct) - paper["registers_pct"]) <= 1
        assert abs(round(estimate.lut_pct) - paper["luts_pct"]) <= 1
        assert abs(round(estimate.block_ram_pct) - paper["brams_pct"]) <= 1

    @pytest.mark.parametrize("num_tg", [1, 2, 4, 6, 8])
    def test_frequencies_match_table1(self, num_tg):
        paper = paper_table1_rows()[f"Nexus# {num_tg} TG" + ("s" if num_tg > 1 else "")]
        estimate = estimate_nexus_sharp(num_tg)
        assert estimate.max_frequency_mhz == pytest.approx(paper["max_mhz"], abs=0.01)
        assert estimate.test_frequency_mhz == pytest.approx(paper["test_mhz"], abs=0.01)

    def test_nexus_pp_row(self):
        paper = paper_table1_rows()["Nexus++"]
        estimate = estimate_nexus_pp()
        assert round(estimate.register_pct) == paper["registers_pct"]
        assert round(estimate.lut_pct) == paper["luts_pct"]
        assert round(estimate.block_ram_pct) == paper["brams_pct"]
        assert estimate.max_frequency_mhz == pytest.approx(paper["max_mhz"])

    def test_8tg_absolute_counts_match_quoted_numbers(self):
        estimate = estimate_nexus_sharp(8)
        # "19,350/127,290 registers/LUTs respectively" (Section IV-E).
        assert estimate.registers == pytest.approx(19350, rel=0.02)
        assert estimate.luts == pytest.approx(127290, rel=0.02)


class TestModelBehaviour:
    def test_resources_monotonically_increase_with_task_graphs(self):
        previous = estimate_nexus_sharp(1)
        for n in range(2, 12):
            current = estimate_nexus_sharp(n)
            assert current.registers > previous.registers
            assert current.luts > previous.luts
            assert current.block_rams > previous.block_rams
            previous = current

    def test_frequency_decreases_with_task_graphs(self):
        assert estimate_nexus_sharp(8).test_frequency_mhz < estimate_nexus_sharp(2).test_frequency_mhz

    def test_fits_flag(self):
        assert estimate_nexus_sharp(8).fits is True
        # Extrapolating far beyond the device capacity must report not fitting.
        assert estimate_nexus_sharp(40).fits is False

    def test_table1_rows_order(self):
        rows = table1()
        assert rows[0].configuration == "Nexus++"
        assert [r.num_task_graphs for r in rows[1:]] == [1, 2, 4, 6, 8]

    def test_as_table_row_shape(self):
        row = estimate_nexus_sharp(4).as_table_row()
        assert len(row) == 7
        assert row[0].startswith("Nexus#")

    def test_invalid_task_graph_count(self):
        with pytest.raises(ConfigurationError):
            estimate_nexus_sharp(0)

    def test_device_totals(self):
        assert ZC706_DEVICE.registers == 437200
        assert ZC706_DEVICE.luts == 218600
        assert ZC706_DEVICE.block_rams == 545
