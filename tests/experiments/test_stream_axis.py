"""The --stream / max_tasks axis through the experiment layer."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import RunPoint, SweepSpec, WorkloadSpec
from repro.trace.serialization import trace_digest
from repro.workloads.synthetic import generate_independent


def _spec(**kwargs):
    defaults = dict(
        workloads=["microbench"],
        managers=["ideal"],
        core_counts=[2],
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSpecAxis:
    def test_stream_flag_reaches_every_point(self):
        spec = _spec(stream=True, managers=["ideal", "nexus#2"], core_counts=[1, 2])
        points = list(spec.points())
        assert len(points) == 4
        assert all(point.stream for point in points)

    def test_stream_recorded_only_when_set(self):
        assert "stream" not in _spec().describe()
        assert _spec(stream=True).describe()["stream"] is True
        point = next(_spec().points())
        assert "stream" not in point.describe()

    def test_spec_hash_stable_for_non_streaming_grids(self):
        # Adding the axis must not move hashes of pre-axis specs (cache
        # compatibility): stream=False is the exact old identity.
        assert _spec().spec_hash() == _spec(stream=False).spec_hash()
        assert _spec().spec_hash() != _spec(stream=True).spec_hash()

    def test_cache_keys_distinguish_stream_from_materialised(self):
        materialised = next(_spec().points())
        streamed = next(_spec(stream=True).points())
        assert materialised.cache_key() != streamed.cache_key()

    def test_max_tasks_flows_into_workloads(self):
        spec = _spec(workloads=["c-ray"], scale=0.05, max_tasks=7)
        workload = spec.workloads[0]
        assert workload.max_tasks == 7
        assert workload.resolve().num_tasks == 7
        assert workload.describe()["max_tasks"] == 7

    def test_max_tasks_changes_cache_identity(self):
        full = next(_spec(workloads=["c-ray"], scale=0.05).points())
        limited = next(_spec(workloads=["c-ray"], scale=0.05, max_tasks=7).points())
        assert full.cache_key() != limited.cache_key()

    def test_invalid_max_tasks_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _spec(max_tasks=0)

    def test_conflicting_max_tasks_rejected(self):
        from repro.common.errors import ConfigurationError

        bounded = WorkloadSpec(name="c-ray", scale=0.05, max_tasks=100)
        assert WorkloadSpec.of(bounded, max_tasks=100) is bounded
        assert WorkloadSpec.of(bounded, max_tasks=None) is bounded
        with pytest.raises(ConfigurationError, match="conflicting"):
            _spec(workloads=[bounded], max_tasks=10)

    def test_stream_points_honour_keep_schedule(self):
        spec = _spec(stream=True, keep_schedule=True)
        result = next(spec.points()).run()
        assert result.start_times  # per-task times collected, as requested

    def test_truncated_named_traces_are_memoised(self):
        a = WorkloadSpec(name="c-ray", scale=0.05, seed=1, max_tasks=7)
        b = WorkloadSpec(name="c-ray", scale=0.05, seed=1, max_tasks=7)
        assert a.resolve() is b.resolve()

    def test_truncated_inline_traces_are_memoised(self):
        spec = WorkloadSpec(name="inline", trace=generate_independent(12, seed=4),
                            max_tasks=5)
        assert spec.resolve() is spec.resolve()


class TestWorkloadSpecStreaming:
    def test_resolve_stream_matches_resolve(self):
        from repro.trace.stream import materialize

        for spec in (
            WorkloadSpec(name="c-ray", scale=0.05, seed=2015),
            WorkloadSpec(name="c-ray", scale=0.05, seed=2015, max_tasks=9),
            WorkloadSpec(name="inline", trace=generate_independent(12, seed=4), max_tasks=5),
        ):
            assert trace_digest(materialize(spec.resolve_stream())) == \
                trace_digest(spec.resolve())


class TestStreamedRuns:
    def test_streamed_points_match_materialised_makespans(self):
        spec = _spec(workloads=["c-ray"], scale=0.02, seeds=(2015,),
                     managers=["ideal", "nexus#2"])
        streamed_spec = _spec(workloads=["c-ray"], scale=0.02, seeds=(2015,),
                              managers=["ideal", "nexus#2"], stream=True)
        runner = SweepRunner()
        base = runner.run(spec)
        streamed = runner.run(streamed_spec)
        for lhs, rhs in zip(base.results, streamed.results):
            assert lhs.makespan_us == rhs.makespan_us
            assert rhs.submit_times == {}  # streamed rows carry no schedules

    def test_streamed_points_are_cacheable_and_parallelisable(self, tmp_path):
        spec = _spec(stream=True, managers=["ideal", "nexus#2"], core_counts=[1, 2])
        cold = SweepRunner(cache_dir=tmp_path / "cache").run(spec)
        warm = SweepRunner(cache_dir=tmp_path / "cache").run(spec)
        parallel = SweepRunner(n_jobs=2, cache_dir=tmp_path / "cache2").run(spec)
        assert cold.executed == 4 and warm.executed == 0 and warm.cache_hits == 4
        assert cold.jsonl_lines() == warm.jsonl_lines() == parallel.jsonl_lines()


class TestCli:
    def test_stream_and_max_tasks_flags(self, capsys, tmp_path):
        out = tmp_path / "rows.jsonl"
        code = cli_main([
            "sweep", "--workloads", "microbench", "--managers", "ideal",
            "--cores", "1", "--stream", "--max-tasks", "3",
            "--output", str(out), "--quiet",
        ])
        assert code == 0
        assert "1 points" in capsys.readouterr().out
        from repro.trace.serialization import iter_jsonl

        (row,) = list(iter_jsonl(out))
        assert row["point"]["stream"] is True
        assert row["point"]["workload"]["max_tasks"] == 3
        assert row["result"]["num_tasks"] == 3
