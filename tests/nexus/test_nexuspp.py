"""Tests for the Nexus++ centralised hardware manager model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.nexus.nexuspp import NexusPlusPlusConfig, NexusPlusPlusManager
from repro.trace.task import TaskDescriptor, make_params


def make_task(task_id, inputs=(), outputs=(), duration=10.0):
    return TaskDescriptor(
        task_id=task_id,
        function="f",
        params=make_params(inputs=inputs, outputs=outputs),
        duration_us=duration,
    )


class TestBasicBehaviour:
    def test_does_not_support_taskwait_on(self):
        assert NexusPlusPlusManager().supports_taskwait_on is False

    def test_independent_task_reported_ready(self):
        manager = NexusPlusPlusManager()
        outcome = manager.submit(make_task(0, outputs=[0x40]), 0.0)
        assert len(outcome.ready) == 1
        assert outcome.ready[0].task_id == 0
        assert outcome.ready[0].time_us > 0.0

    def test_dependent_task_released_after_finish(self):
        manager = NexusPlusPlusManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        outcome = manager.submit(make_task(1, inputs=[0x40]), 0.0)
        assert outcome.ready == ()
        finish = manager.finish(0, 100.0)
        assert [n.task_id for n in finish.ready] == [1]
        assert finish.ready[0].time_us > 100.0

    def test_accept_time_reflects_input_parser_occupancy(self):
        config = NexusPlusPlusConfig(frequency_mhz=100.0)
        manager = NexusPlusPlusManager(config)
        outcome = manager.submit(make_task(0, outputs=[0x40, 0x80, 0xC0, 0x100]), 0.0)
        # 4-parameter task: 12 input cycles at 100 MHz = 0.12 µs.
        assert outcome.accept_time_us == pytest.approx(0.12)

    def test_submissions_serialise_on_the_input_parser(self):
        manager = NexusPlusPlusManager()
        first = manager.submit(make_task(0, outputs=[0x40]), 0.0)
        second = manager.submit(make_task(1, outputs=[0x80]), 0.0)
        assert second.accept_time_us > first.accept_time_us

    def test_ready_latency_matches_pipeline_sum(self):
        config = NexusPlusPlusConfig(frequency_mhz=100.0, fifo_latency_cycles=3)
        manager = NexusPlusPlusManager(config)
        outcome = manager.submit(make_task(0, outputs=[0x40, 0x80, 0xC0, 0x100]), 0.0)
        # input 12 + fifo 3 + insert 18 + fifo 3 + write-back 3 = 39 cycles.
        assert outcome.ready[0].time_us == pytest.approx(0.39)

    def test_lower_frequency_scales_latency(self):
        fast = NexusPlusPlusManager(NexusPlusPlusConfig(frequency_mhz=100.0))
        slow = NexusPlusPlusManager(NexusPlusPlusConfig(frequency_mhz=50.0))
        task = make_task(0, outputs=[0x40])
        ready_fast = fast.submit(task, 0.0).ready[0].time_us
        ready_slow = slow.submit(task, 0.0).ready[0].time_us
        assert ready_slow == pytest.approx(2.0 * ready_fast)

    def test_reset_clears_pipeline_state(self):
        manager = NexusPlusPlusManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.finish(0, 50.0)
        manager.reset()
        outcome = manager.submit(make_task(0, outputs=[0x40]), 0.0)
        assert outcome.accept_time_us == pytest.approx(
            NexusPlusPlusManager().submit(make_task(0, outputs=[0x40]), 0.0).accept_time_us
        )

    def test_statistics_exposed(self):
        manager = NexusPlusPlusManager()
        manager.submit(make_task(0, outputs=[0x40]), 0.0)
        manager.finish(0, 10.0)
        stats = manager.statistics()
        assert stats["tasks_inserted"] == 1
        assert stats["tasks_finished"] == 1
        assert stats["input_parser_busy_us"] > 0
        assert stats["mean_ready_latency_us"] > 0

    def test_describe(self):
        description = NexusPlusPlusManager().describe()
        assert description["name"] == "Nexus++"
        assert description["supports_taskwait_on"] is False

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            NexusPlusPlusConfig(frequency_mhz=0.0)


class TestThroughput:
    def test_back_to_back_ready_tasks_spaced_by_insert_stage(self):
        """Submitting many independent tasks, the ready-task rate is bound
        by the Insert stage (the longest pipeline stage), as in Figure 1."""
        config = NexusPlusPlusConfig(frequency_mhz=100.0)
        manager = NexusPlusPlusManager(config)
        ready_times = []
        accept = 0.0
        for i in range(20):
            outcome = manager.submit(make_task(i, outputs=[0x40 * (i + 1) * 7]), accept)
            accept = outcome.accept_time_us
            ready_times.extend(n.time_us for n in outcome.ready)
        gaps = [b - a for a, b in zip(ready_times, ready_times[1:])]
        insert_stage_us = config.timing.insert_cycles(1) / config.frequency_mhz
        # Steady-state spacing equals the dominant stage occupancy.
        assert gaps[-1] == pytest.approx(insert_stage_us, rel=0.35)
