"""Tests for the pipeline timing parameters (Sections III-A and IV-D)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.nexus.timing import (
    NEXUS_SHARP_TEST_FREQUENCIES_MHZ,
    NexusPlusPlusTiming,
    NexusSharpTiming,
    synthesis_frequency_mhz,
)


class TestNexusPlusPlusTiming:
    def test_paper_example_4_params(self):
        timing = NexusPlusPlusTiming()
        # "12 cycles per task" for the input stage, "18 cycles" insert,
        # "3 cycles" write back (4-parameter example, Section III-A).
        assert timing.input_cycles(4) == 12
        assert timing.insert_cycles(4) == 18
        assert timing.writeback_cycles == 3

    def test_scales_with_parameters(self):
        timing = NexusPlusPlusTiming()
        assert timing.input_cycles(1) == 6
        assert timing.insert_cycles(1) == 6
        assert timing.cleanup_cycles(2) == 10

    def test_tightly_coupled_preset_is_cheaper(self):
        full = NexusPlusPlusTiming()
        tight = NexusPlusPlusTiming.tightly_coupled()
        for p in (1, 2, 4, 6):
            assert tight.input_cycles(p) < full.input_cycles(p)
            assert tight.insert_cycles(p) < full.insert_cycles(p)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            NexusPlusPlusTiming(writeback_cycles=-1)


class TestNexusSharpTiming:
    def test_paper_example_4_params(self):
        timing = NexusSharpTiming()
        # IPh (2) + 4 x IP (2) + IPf (1) = 11 cycles of Input Parser
        # occupancy for the 4-parameter example of Figure 4.
        assert timing.input_cycles(4) == 11
        assert timing.insert_cycles_per_param == 5
        assert timing.writeback_cycles == 3
        assert timing.args_fifo_latency_cycles == 3

    def test_param_forward_offsets_increase(self):
        timing = NexusSharpTiming()
        offsets = [timing.param_forward_offset_cycles(i) for i in range(4)]
        assert offsets == sorted(offsets)
        assert offsets[0] == 4  # header (2) + first parameter (2)

    def test_finish_offsets(self):
        timing = NexusSharpTiming()
        assert timing.finish_input_cycles(2) == timing.finish_param_forward_offset_cycles(1)

    def test_tightly_coupled_preset_is_cheaper(self):
        full = NexusSharpTiming()
        tight = NexusSharpTiming.tightly_coupled()
        assert tight.input_cycles(4) < full.input_cycles(4)
        assert tight.insert_cycles_per_param < full.insert_cycles_per_param

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            NexusSharpTiming(insert_cycles_per_param=-2)


class TestSynthesisFrequency:
    def test_table1_values(self):
        assert synthesis_frequency_mhz(1) == pytest.approx(100.0)
        assert synthesis_frequency_mhz(2) == pytest.approx(100.0)
        assert synthesis_frequency_mhz(4) == pytest.approx(83.33)
        assert synthesis_frequency_mhz(6) == pytest.approx(55.56)
        assert synthesis_frequency_mhz(8) == pytest.approx(41.66)

    def test_max_frequencies(self):
        assert synthesis_frequency_mhz(6, use_max=True) == pytest.approx(55.66)

    def test_interpolation_between_known_points(self):
        freq_5 = synthesis_frequency_mhz(5)
        assert NEXUS_SHARP_TEST_FREQUENCIES_MHZ[6] < freq_5 < NEXUS_SHARP_TEST_FREQUENCIES_MHZ[4]

    def test_extrapolation_stays_positive(self):
        assert synthesis_frequency_mhz(16) > 0
        assert synthesis_frequency_mhz(32) > 0

    def test_frequency_monotonically_decreasing(self):
        values = [synthesis_frequency_mhz(n) for n in range(1, 12)]
        assert all(a >= b for a, b in zip(values, values[1:]))
