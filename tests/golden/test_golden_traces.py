"""Golden-trace regression tests.

Replays the committed miniature traces (one per workload generator)
through the four golden managers and compares the makespans *exactly*
against ``expected_makespans.json``.  This pins the simulator's observable
behaviour down to the last bit: a refactor that changes any number here
is changing the science, not just the code, and must regenerate the
goldens (``tests/golden/regenerate.py``) and justify the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.system.machine import simulate
from repro.trace.serialization import load_trace, trace_digest

from golden_config import GOLDEN_MANAGERS, GOLDEN_SEED, golden_traces

GOLDEN_DIR = Path(__file__).parent
DATA_DIR = GOLDEN_DIR / "data"
EXPECTED = json.loads((GOLDEN_DIR / "expected_makespans.json").read_text(encoding="utf-8"))

TRACE_KEYS = sorted(EXPECTED["traces"])
MANAGER_KEYS = list(GOLDEN_MANAGERS)


def test_expected_file_covers_all_golden_managers():
    assert EXPECTED["seed"] == GOLDEN_SEED
    for key in TRACE_KEYS:
        assert set(EXPECTED["traces"][key]["makespans_us"]) == set(MANAGER_KEYS)


def test_every_generator_has_a_committed_golden_trace():
    assert set(TRACE_KEYS) == set(golden_traces())
    for key in TRACE_KEYS:
        assert (DATA_DIR / f"{key}.json.gz").exists(), f"missing golden trace {key}"


@pytest.mark.parametrize("key", TRACE_KEYS)
def test_committed_trace_matches_expected_identity(key):
    trace = load_trace(DATA_DIR / f"{key}.json.gz")
    entry = EXPECTED["traces"][key]
    assert trace_digest(trace) == entry["trace_digest"]
    assert trace.num_tasks == entry["num_tasks"]
    assert trace.total_work_us == entry["total_work_us"]


@pytest.mark.parametrize("key", TRACE_KEYS)
def test_generators_still_reproduce_the_committed_traces(key):
    """The seeded generators must still emit byte-identical traces."""
    committed = load_trace(DATA_DIR / f"{key}.json.gz")
    regenerated = golden_traces()[key]
    assert trace_digest(regenerated) == trace_digest(committed)


@pytest.mark.parametrize("manager_key", MANAGER_KEYS)
@pytest.mark.parametrize("key", TRACE_KEYS)
def test_golden_makespans_exact(key, manager_key):
    trace = load_trace(DATA_DIR / f"{key}.json.gz")
    expected = EXPECTED["traces"][key]["makespans_us"][manager_key]
    factory = GOLDEN_MANAGERS[manager_key]
    result = simulate(trace, factory(), num_cores=EXPECTED["cores"], validate=True)
    assert result.makespan_us == expected, (
        f"{manager_key} on golden {key}: makespan {result.makespan_us!r} != "
        f"expected {expected!r} — simulator behaviour changed; if intentional, "
        "rerun tests/golden/regenerate.py and explain the diff in the PR"
    )
