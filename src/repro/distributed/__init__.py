"""Distributed sweep fabric: one scheduler, N socket workers.

The experiments layer's ``multiprocessing`` fan-out tops out at a single
box.  This package graduates it to a Dask-style architecture (one
central scheduler, a number of worker processes, sub-millisecond
dispatch overhead):

* :mod:`repro.distributed.protocol` — the wire format: length-prefixed
  JSON frames over TCP, with zlib-compressed pickle payloads for the
  one-time job-table transfer.
* :mod:`repro.distributed.frontier` — :class:`SweepFrontier`, the
  scheduler-side ownership ledger of every grid cell: locality-aware
  chunking, per-worker assignment, work stealing, bounded
  retry/requeue when a worker dies.
* :mod:`repro.distributed.scheduler` — :class:`SweepScheduler`, the
  TCP server that spawns/accepts workers, dispatches chunks, detects
  dead workers (socket EOF fast path + heartbeat-timeout backstop) and
  assembles results in deterministic cell order.
* :mod:`repro.distributed.worker` — the pull-based worker loop and the
  standalone ``python -m repro.distributed.worker`` entry point for
  remote hosts.

The fabric is an *execution* option exactly like ``n_jobs`` and
``batch_lanes``: ``SweepRunner(transport="sockets", workers=N)`` emits
JSONL byte-identical to a serial ``n_jobs=1`` run, and the shared
content-addressed :class:`~repro.experiments.cache.ResultCache` makes
any worker's result reusable by all (a warm re-run does zero
simulations).  See ``docs/distributed.md`` for the protocol frames,
failure semantics and the work-stealing policy.
"""

from repro.distributed.frontier import SweepFrontier
from repro.distributed.protocol import (
    FrameStream,
    ProtocolError,
    decode_payload,
    encode_payload,
)
from repro.distributed.scheduler import HeartbeatMonitor, SweepScheduler

__all__ = [
    "FrameStream",
    "HeartbeatMonitor",
    "ProtocolError",
    "SweepFrontier",
    "SweepScheduler",
    "decode_payload",
    "encode_payload",
]
