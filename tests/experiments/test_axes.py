"""Tests for the scheduler / topology sweep axes.

The contract: axes enumerate as part of the deterministic grid order,
cache keys invalidate exactly when an axis entry changes (and never when
only its spelling changes), and mixed-axis results never merge into one
curve.
"""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.runner import curve_display_key, run_sweep, rows_to_studies
from repro.experiments.spec import SweepSpec


def small_spec(**kwargs):
    defaults = dict(
        workloads=("microbench",),
        managers=("ideal",),
        core_counts=(2,),
        seeds=(2015,),
        scale=0.05,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestAxisNormalisation:
    def test_aliases_canonicalise_in_spec(self):
        spec = small_spec(schedulers=("shortest",), topologies=("BIG_LITTLE:0.5",))
        assert spec.schedulers == ("sjf",)
        assert spec.topologies == ("biglittle:0.5:0.5",)

    def test_duplicate_axis_entries_rejected_after_aliasing(self):
        with pytest.raises(ConfigurationError):
            small_spec(schedulers=("sjf", "shortest"))
        with pytest.raises(ConfigurationError):
            small_spec(topologies=("biglittle", "biglittle:0.5:0.5"))

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(schedulers=())
        with pytest.raises(ConfigurationError):
            small_spec(topologies=())

    def test_grid_order_is_schedulers_then_topologies_then_cores(self):
        spec = small_spec(
            core_counts=(1, 2),
            schedulers=("fifo", "sjf"),
            topologies=("homogeneous", "biglittle"),
        )
        cells = [(p.scheduler, p.topology, p.cores) for p in spec.points()]
        assert cells == [
            ("fifo", "homogeneous", 1), ("fifo", "homogeneous", 2),
            ("fifo", "biglittle:0.5:0.5", 1), ("fifo", "biglittle:0.5:0.5", 2),
            ("sjf", "homogeneous", 1), ("sjf", "homogeneous", 2),
            ("sjf", "biglittle:0.5:0.5", 1), ("sjf", "biglittle:0.5:0.5", 2),
        ]
        assert spec.num_points() == 8


class TestCacheKeys:
    def _point(self, **axis):
        return next(iter(small_spec(**axis).points()))

    def test_scheduler_changes_cache_key(self):
        assert (self._point(schedulers=("fifo",)).cache_key()
                != self._point(schedulers=("sjf",)).cache_key())

    def test_topology_changes_cache_key(self):
        assert (self._point(topologies=("homogeneous",)).cache_key()
                != self._point(topologies=("biglittle",)).cache_key())
        assert (self._point(topologies=("biglittle:0.5",)).cache_key()
                != self._point(topologies=("biglittle:0.25",)).cache_key())

    def test_aliased_spellings_share_a_cache_key(self):
        assert (self._point(schedulers=("shortest",)).cache_key()
                == self._point(schedulers=("sjf",)).cache_key())
        assert (self._point(topologies=("big_little",)).cache_key()
                == self._point(topologies=("biglittle:0.5:0.5",)).cache_key())

    def test_point_replacement_keeps_axis_identity(self):
        point = self._point(schedulers=("sjf",), topologies=("biglittle",))
        clone = dataclasses.replace(point)
        assert clone.cache_key() == point.cache_key()

    def test_spec_hash_covers_axes(self):
        assert (small_spec(schedulers=("fifo", "sjf")).spec_hash()
                != small_spec(schedulers=("fifo",)).spec_hash())
        assert (small_spec(topologies=("biglittle",)).spec_hash()
                != small_spec().spec_hash())


class TestCurveLabels:
    def test_display_key_suffixes_only_swept_axes(self):
        assert curve_display_key("Ideal", "fifo", "homogeneous", False, False) == "Ideal"
        assert curve_display_key("Ideal", "sjf", "homogeneous", True, False) == "Ideal [sjf]"
        assert curve_display_key("Ideal", "fifo", "biglittle:0.5:0.5", False, True) == \
            "Ideal @biglittle:0.5:0.5"
        assert curve_display_key("Ideal", "sjf", "biglittle:0.5:0.5", True, True) == \
            "Ideal [sjf] @biglittle:0.5:0.5"

    def test_mixed_axis_outcome_gets_one_curve_per_combination(self):
        spec = small_spec(
            core_counts=(1, 2),
            schedulers=("fifo", "sjf"),
            topologies=("homogeneous", "biglittle"),
        )
        outcome = run_sweep(spec)
        study = outcome.studies()["microbench"]
        assert sorted(study.curves) == sorted(
            curve_display_key("Ideal", s, t, True, True)
            for s in ("fifo", "sjf")
            for t in ("homogeneous", "biglittle:0.5:0.5")
        )
        for curve in study.curves.values():
            assert curve.core_counts == (1, 2)
        # Re-grouping straight from the JSONL rows matches the outcome.
        regrouped = rows_to_studies(outcome.rows)
        assert sorted(regrouped["microbench"].curves) == sorted(study.curves)

    def test_single_axis_sweep_keeps_plain_manager_labels(self):
        outcome = run_sweep(small_spec())
        assert list(outcome.studies()["microbench"].curves) == ["Ideal"]

    def test_results_carry_axis_identity(self):
        outcome = run_sweep(small_spec(schedulers=("locality",), topologies=("biglittle",)))
        result = outcome.results[0]
        assert result.scheduler == "locality"
        assert result.topology["kind"] == "big_little"
        assert len(result.per_core_busy_us) == 2
