"""Search-space construction: candidates, fidelity ladder, compilation."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.tune.space import SearchSpace, nexus_sharp_axis, parse_geometry


def small_space(**overrides):
    defaults = dict(
        managers=("ideal", "nexus#2@100"),
        workloads=("microbench", "sparselu"),
        schedulers=("fifo", "sjf"),
        core_counts=(2, 4),
        seeds=(1, 2),
        scale=0.05,
        name="unit",
    )
    defaults.update(overrides)
    return SearchSpace(**defaults)


class TestGeometry:
    def test_parse_geometry_string(self):
        assert parse_geometry("64x4") == (64, 4)
        assert parse_geometry((16, 2)) == (16, 2)

    @pytest.mark.parametrize("bad", ["64", "x4", "ax4", "0x4", "8x0"])
    def test_malformed_geometry_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_geometry(bad)

    def test_axis_compiles_tg_by_geometry(self):
        assert nexus_sharp_axis([4, 6], ["256x8", "64x4"], frequency_mhz=100.0) == (
            "nexus#4@100", "nexus#4@100/64x4", "nexus#6@100", "nexus#6@100/64x4")

    def test_paper_geometry_compiles_without_a_suffix(self):
        """256x8 candidates must share cache identity with every plain
        nexus#<n> sweep — the suffix would fork their cache keys."""
        assert nexus_sharp_axis([6]) == ("nexus#6",)
        assert nexus_sharp_axis([6], [(256, 8)], frequency_mhz=55.56) == (
            "nexus#6@55.56",)


class TestSearchSpace:
    def test_candidates_cross_managers_schedulers_topologies(self):
        space = small_space(topologies=("homogeneous", "biglittle"))
        candidates = space.candidates()
        assert len(candidates) == 2 * 2 * 2
        keys = [candidate.key for candidate in candidates]
        assert len(set(keys)) == len(keys)
        assert any("Nexus# 2TG@100MHz|sjf" in key for key in keys)

    def test_units_are_seed_major(self):
        """Rung 0 must see every workload before any extra seed."""
        assert small_space().units() == (
            ("microbench", 1), ("sparselu", 1),
            ("microbench", 2), ("sparselu", 2))

    def test_cells_per_unit_is_the_core_axis(self):
        assert small_space().cells_per_unit == 2

    def test_base_spec_covers_the_full_grid(self):
        space = small_space()
        spec = space.base_spec()
        # 4 units x 2 managers x 2 schedulers x 2 cores.
        assert spec.num_points() == 4 * 2 * 2 * 2
        assert spec.name == "tune:unit"

    def test_aliases_canonicalise(self):
        space = small_space(schedulers=("shortest",))
        assert space.schedulers == ("sjf",)

    def test_unknown_manager_fails_at_build_time(self):
        with pytest.raises(ConfigurationError):
            small_space(managers=("nexus#lots",))

    @pytest.mark.parametrize("field", ["managers", "workloads", "schedulers",
                                      "core_counts", "seeds"])
    def test_empty_axes_rejected(self, field):
        with pytest.raises(ConfigurationError):
            small_space(**{field: ()})

    def test_describe_roundtrips_the_axes(self):
        doc = small_space().describe()
        assert doc["managers"] == ["ideal", "nexus#2@100"]
        assert doc["seeds"] == [1, 2]
        assert doc["scale"] == 0.05

    def test_candidate_describe_names_the_config(self):
        candidate = next(iter(small_space()))
        doc = candidate.describe()
        assert doc["display"] == "Ideal"
        assert doc["config"]["kind"] == "ideal"
