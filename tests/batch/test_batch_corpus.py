"""Replay the pinned batch corpus — the hypothesis-free regression layer.

Every corpus spec's serial elaboration runs under all four golden
managers through both engines (``Machine.run`` scalar oracle,
:func:`repro.sim.batch.run_lanes` batch backend), asserting full
result byte-identity, plus exact determinism of repeated batch runs
and the slice-size independence of the lockstep driver.
"""

from __future__ import annotations

import pytest

from repro.sim.batch import LaneSpec, run_lanes
from repro.system.machine import Machine, MachineConfig
from repro.workloads.fuzz import fuzz_program

from batch_corpus import BATCH_CORPUS
from batch_manager_factories import BATCH_TEST_MANAGERS

CORPUS_IDS = [f"seed{spec.seed}" for spec in BATCH_CORPUS]
MANAGER_IDS = list(BATCH_TEST_MANAGERS)


def _trace(spec):
    return fuzz_program(spec).elaborate()


@pytest.mark.parametrize("spec", BATCH_CORPUS, ids=CORPUS_IDS)
@pytest.mark.parametrize("manager_key", MANAGER_IDS)
def test_corpus_scalar_vs_batch(spec, manager_key):
    factory = BATCH_TEST_MANAGERS[manager_key]
    trace = _trace(spec)
    config = MachineConfig(num_cores=4, validate=True)

    scalar = Machine(factory(), config).run(trace)
    (batch,) = run_lanes([LaneSpec(trace=trace, manager=factory(), config=config)])

    assert scalar == batch


@pytest.mark.parametrize("manager_key", MANAGER_IDS)
def test_corpus_as_one_mixed_batch(manager_key):
    """The whole corpus as one lane batch, each lane a different trace
    and core count, equals the per-trace scalar runs."""
    factory = BATCH_TEST_MANAGERS[manager_key]
    traces = [_trace(spec) for spec in BATCH_CORPUS]
    configs = [
        MachineConfig(num_cores=cores, validate=True)
        for cores in (1, 2, 3, 4, 8, 16)
    ]
    scalars = [
        Machine(factory(), config).run(trace)
        for trace, config in zip(traces, configs)
    ]
    batch = run_lanes([
        LaneSpec(trace=trace, manager=factory(), config=config)
        for trace, config in zip(traces, configs)
    ])
    assert batch == scalars


def test_corpus_batch_runs_are_exactly_deterministic():
    lanes = [
        LaneSpec(
            trace=_trace(spec),
            manager=BATCH_TEST_MANAGERS["nanos"](),
            config=MachineConfig(num_cores=4),
        )
        for spec in BATCH_CORPUS
    ]
    first = run_lanes(lanes)
    second = run_lanes([
        LaneSpec(
            trace=lane.trace,
            manager=BATCH_TEST_MANAGERS["nanos"](),
            config=lane.config,
        )
        for lane in lanes
    ])
    assert first == second


@pytest.mark.parametrize("slice_events", [1, 7, 64, 10**9])
def test_lockstep_slice_size_is_unobservable(slice_events):
    """The lockstep granularity only controls interleaving fairness —
    never results."""
    factory = BATCH_TEST_MANAGERS["ideal"]
    traces = [_trace(spec) for spec in BATCH_CORPUS[:3]]
    config = MachineConfig(num_cores=4)

    def lanes():
        return [
            LaneSpec(trace=trace, manager=factory(), config=config)
            for trace in traces
        ]

    reference = run_lanes(lanes())
    sliced = run_lanes(lanes(), slice_events=slice_events)
    assert sliced == reference
