"""Tests for the FPGA resource/frequency model (Table I)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.fpga.resources import (
    ZC706_DEVICE,
    estimate_for_manager,
    estimate_nexus_pp,
    estimate_nexus_sharp,
    paper_table1_rows,
    table1,
)


class TestCalibrationAgainstTable1:
    @pytest.mark.parametrize("num_tg", [1, 2, 4, 6, 8])
    def test_percentages_match_paper_within_one_point(self, num_tg):
        paper = paper_table1_rows()[f"Nexus# {num_tg} TG" + ("s" if num_tg > 1 else "")]
        estimate = estimate_nexus_sharp(num_tg)
        assert abs(round(estimate.register_pct) - paper["registers_pct"]) <= 1
        assert abs(round(estimate.lut_pct) - paper["luts_pct"]) <= 1
        assert abs(round(estimate.block_ram_pct) - paper["brams_pct"]) <= 1

    @pytest.mark.parametrize("num_tg", [1, 2, 4, 6, 8])
    def test_frequencies_match_table1(self, num_tg):
        paper = paper_table1_rows()[f"Nexus# {num_tg} TG" + ("s" if num_tg > 1 else "")]
        estimate = estimate_nexus_sharp(num_tg)
        assert estimate.max_frequency_mhz == pytest.approx(paper["max_mhz"], abs=0.01)
        assert estimate.test_frequency_mhz == pytest.approx(paper["test_mhz"], abs=0.01)

    def test_nexus_pp_row(self):
        paper = paper_table1_rows()["Nexus++"]
        estimate = estimate_nexus_pp()
        assert round(estimate.register_pct) == paper["registers_pct"]
        assert round(estimate.lut_pct) == paper["luts_pct"]
        assert round(estimate.block_ram_pct) == paper["brams_pct"]
        assert estimate.max_frequency_mhz == pytest.approx(paper["max_mhz"])

    def test_8tg_absolute_counts_match_quoted_numbers(self):
        estimate = estimate_nexus_sharp(8)
        # "19,350/127,290 registers/LUTs respectively" (Section IV-E).
        assert estimate.registers == pytest.approx(19350, rel=0.02)
        assert estimate.luts == pytest.approx(127290, rel=0.02)


class TestGoldenPinAgainstTable1:
    """Exact golden pins: the tuner's area-normalised objective divides by
    these estimates, so silent recalibration drift must fail loudly, not
    hide inside a ±1-point tolerance."""

    #: The affine BRAM interpolant sits one rounding point under the
    #: paper's 2-TG row (24 vs 25): the paper's own column steps by
    #: 12, 22, 22, 22 BRAMs per 2 TGs -- not affine in n -- and the
    #: smooth model favours the heavily-used larger rows.
    KNOWN_OFF_BY_ONE = {(2, "brams_pct")}

    @pytest.mark.parametrize("num_tg", [1, 2, 4, 6, 8])
    def test_sharp_percentages_round_to_the_paper_exactly(self, num_tg):
        paper = paper_table1_rows()[f"Nexus# {num_tg} TG" + ("s" if num_tg > 1 else "")]
        estimate = estimate_nexus_sharp(num_tg)
        modelled = {
            "registers_pct": round(estimate.register_pct),
            "luts_pct": round(estimate.lut_pct),
            "brams_pct": round(estimate.block_ram_pct),
        }
        for column, value in modelled.items():
            if (num_tg, column) in self.KNOWN_OFF_BY_ONE:
                assert value == paper[column] - 1, (
                    f"{column}@{num_tg}TG drifted from its pinned off-by-one")
            else:
                assert value == paper[column], f"{column}@{num_tg}TG"

    def test_total_utilization_tracks_the_lut_column_exactly(self):
        for num_tg in (1, 2, 4, 6, 8):
            paper = paper_table1_rows()[f"Nexus# {num_tg} TG" + ("s" if num_tg > 1 else "")]
            estimate = estimate_nexus_sharp(num_tg)
            assert round(estimate.total_utilization_pct) == paper["luts_pct"]

    def test_nexus_pp_percentages_round_to_the_paper_exactly(self):
        paper = paper_table1_rows()["Nexus++"]
        estimate = estimate_nexus_pp()
        assert round(estimate.register_pct) == paper["registers_pct"]
        assert round(estimate.lut_pct) == paper["luts_pct"]
        assert round(estimate.block_ram_pct) == paper["brams_pct"]

    @given(num_tg=st.integers(min_value=1, max_value=64))
    def test_utilization_is_monotone_in_task_graphs(self, num_tg):
        """Property: adding a task graph never shrinks any resource --
        the area objective's denominator is strictly increasing."""
        smaller = estimate_nexus_sharp(num_tg)
        larger = estimate_nexus_sharp(num_tg + 1)
        assert larger.total_utilization_pct > smaller.total_utilization_pct
        assert larger.area_fraction > smaller.area_fraction
        assert larger.registers > smaller.registers
        assert larger.block_rams > smaller.block_rams

    def test_area_fraction_is_the_utilization_fraction(self):
        estimate = estimate_nexus_sharp(6)
        assert estimate.area_fraction == pytest.approx(
            estimate.total_utilization_pct / 100.0)


class TestEstimateForManager:
    def test_nexus_sharp_doc_maps_to_the_tg_estimate(self):
        estimate = estimate_for_manager({"kind": "nexus#", "num_task_graphs": 4})
        assert estimate is not None and estimate.num_task_graphs == 4

    def test_nexus_pp_doc_maps_to_the_baseline(self):
        estimate = estimate_for_manager({"kind": "nexus++"})
        assert estimate is not None and estimate.configuration == "Nexus++"

    @pytest.mark.parametrize("kind", ["ideal", "nanos", "sw400", "opaque"])
    def test_software_managers_occupy_no_fabric(self, kind):
        assert estimate_for_manager({"kind": kind}) is None


class TestModelBehaviour:
    def test_resources_monotonically_increase_with_task_graphs(self):
        previous = estimate_nexus_sharp(1)
        for n in range(2, 12):
            current = estimate_nexus_sharp(n)
            assert current.registers > previous.registers
            assert current.luts > previous.luts
            assert current.block_rams > previous.block_rams
            previous = current

    def test_frequency_decreases_with_task_graphs(self):
        assert estimate_nexus_sharp(8).test_frequency_mhz < estimate_nexus_sharp(2).test_frequency_mhz

    def test_fits_flag(self):
        assert estimate_nexus_sharp(8).fits is True
        # Extrapolating far beyond the device capacity must report not fitting.
        assert estimate_nexus_sharp(40).fits is False

    def test_table1_rows_order(self):
        rows = table1()
        assert rows[0].configuration == "Nexus++"
        assert [r.num_task_graphs for r in rows[1:]] == [1, 2, 4, 6, 8]

    def test_as_table_row_shape(self):
        row = estimate_nexus_sharp(4).as_table_row()
        assert len(row) == 7
        assert row[0].startswith("Nexus#")

    def test_invalid_task_graph_count(self):
        with pytest.raises(ConfigurationError):
            estimate_nexus_sharp(0)

    def test_device_totals(self):
        assert ZC706_DEVICE.registers == 437200
        assert ZC706_DEVICE.luts == 218600
        assert ZC706_DEVICE.block_rams == 545
