"""Regenerate the golden traces and their expected makespans.

Run from the repository root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/golden/regenerate.py

The script writes one small, seeded trace per workload generator to
``tests/golden/data/`` and records the exact makespan of each trace
under every golden manager in ``expected_makespans.json``.  The paired
test (``test_golden_traces.py``) replays the committed traces and
compares against these values *exactly* — any diff in a regeneration is
a change to the simulated science and must be explained in the PR that
commits it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.system.machine import simulate
from repro.trace.serialization import save_trace, trace_digest

from golden_config import GOLDEN_MANAGERS, GOLDEN_SEED, golden_traces

DATA_DIR = Path(__file__).parent / "data"
EXPECTED_PATH = Path(__file__).parent / "expected_makespans.json"


def main() -> int:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    expected: dict[str, dict[str, object]] = {}
    for key, trace in golden_traces().items():
        path = save_trace(trace, DATA_DIR / f"{key}.json.gz")
        makespans = {}
        for manager_key, factory in GOLDEN_MANAGERS.items():
            result = simulate(trace, factory(), num_cores=8, validate=True)
            makespans[manager_key] = result.makespan_us
        expected[key] = {
            "trace_digest": trace_digest(trace),
            "num_tasks": trace.num_tasks,
            "total_work_us": trace.total_work_us,
            "makespans_us": makespans,
        }
        print(f"{key:24s} {trace.num_tasks:5d} tasks -> {path.name}")
    EXPECTED_PATH.write_text(
        json.dumps({"seed": GOLDEN_SEED, "cores": 8, "traces": expected},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {EXPECTED_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
