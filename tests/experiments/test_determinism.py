"""Property-based determinism guarantees of the sweep subsystem.

Two properties the whole experiment layer leans on:

1. **Parallelism is invisible**: a sweep run with ``n_jobs=1`` and
   ``n_jobs=4`` writes byte-identical JSONL result rows.
2. **The cache is invisible**: a warm (fully cached) re-run writes
   byte-identical JSONL result rows to the cold run that filled it.

The grids are drawn by hypothesis over workloads, managers, core counts
and seeds, so the properties are checked across the spec space rather
than for one hand-picked grid.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.cache import ResultCache
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec

#: Cheap workloads only — hypothesis runs each property several times.
WORKLOAD_POOL = ("microbench", "c-ray", "sparselu")
MANAGER_POOL = ("ideal", "nanos", "nexus#2", "nexus++")
SCHEDULER_POOL = ("fifo", "sjf", "ljf", "locality")
TOPOLOGY_POOL = ("homogeneous", "biglittle:0.5", "homogeneous:2", "biglittle:0.25:0.5")


def sweep_specs():
    """Strategy producing small but varied sweep grids (mixed axes too)."""
    return st.builds(
        lambda workloads, managers, cores, seed, keep, schedulers, topologies: SweepSpec(
            workloads=workloads,
            managers=managers,
            core_counts=sorted(cores),
            seeds=(seed,),
            scale=0.02,
            keep_schedule=keep,
            schedulers=schedulers,
            topologies=topologies,
        ),
        workloads=st.lists(st.sampled_from(WORKLOAD_POOL), min_size=1, max_size=2, unique=True),
        managers=st.lists(st.sampled_from(MANAGER_POOL), min_size=1, max_size=2, unique=True),
        cores=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=2, unique=True),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        keep=st.booleans(),
        schedulers=st.lists(st.sampled_from(SCHEDULER_POOL), min_size=1, max_size=2, unique=True),
        topologies=st.lists(st.sampled_from(TOPOLOGY_POOL), min_size=1, max_size=2, unique=True),
    )


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=sweep_specs())
def test_jsonl_rows_identical_across_parallelism(tmp_path_factory, spec):
    base = tmp_path_factory.mktemp("parallelism")
    serial_path = base / "serial.jsonl"
    parallel_path = base / "parallel.jsonl"
    SweepRunner(n_jobs=1).run(spec, jsonl_path=serial_path)
    SweepRunner(n_jobs=4).run(spec, jsonl_path=parallel_path)
    assert serial_path.read_bytes() == parallel_path.read_bytes()


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=sweep_specs())
def test_cache_hits_identical_to_cold_runs(tmp_path_factory, spec):
    base = tmp_path_factory.mktemp("cachedet")
    cache = ResultCache(base / "cache")
    cold_path = base / "cold.jsonl"
    warm_path = base / "warm.jsonl"
    cold = SweepRunner(cache=cache).run(spec, jsonl_path=cold_path)
    warm = SweepRunner(cache=cache).run(spec, jsonl_path=warm_path)
    assert cold.executed == len(cold.points)
    assert warm.executed == 0
    assert warm.cache_hits == len(warm.points)
    assert cold_path.read_bytes() == warm_path.read_bytes()
    # And the in-memory results decode identically.
    assert [r.makespan_us for r in warm.results] == [r.makespan_us for r in cold.results]
