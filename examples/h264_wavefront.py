#!/usr/bin/env python3
"""Macroblock wavefront decoding written with the OmpSs-like Python API.

This example reproduces Listing 1 of the paper: the ``decode()`` function
is annotated with ``input(left, upright) inout(this)`` and called for
every macroblock of a frame; the runtime records the task graph, which is
then replayed on Nexus# with different numbers of task graphs — the same
sweep as Figure 7, but on a program written with the library's own
front-end instead of a pre-generated trace.

Run with::

    python examples/h264_wavefront.py
"""

from repro import NexusSharpConfig, NexusSharpManager, IdealManager, simulate
from repro.runtime import TaskProgram
from repro.trace import build_dependency_graph


def build_wavefront_program(rows: int = 34, cols: int = 60, frames: int = 4,
                            decode_us: float = 4.6) -> "TaskProgram":
    """Record ``frames`` frames of macroblock wavefront decoding."""
    prog = TaskProgram("wavefront-listing1", seed=7)

    # One matrix of macroblock dependency records per frame buffer, as in
    # `MB_type* X[NB_WIDTH][NB_HEIGHT]` of Listing 1.
    buffers = [prog.matrix(f"frame{f}", rows, cols) for f in range(2)]

    @prog.task(inputs=("left", "upright", "ref"), inouts=("this_",), duration_us=decode_us)
    def decode(left, upright, ref, this_):
        """Decode one macroblock (placeholder body; timing comes from the trace)."""

    for frame in range(frames):
        blocks = buffers[frame % 2]
        previous = buffers[(frame - 1) % 2] if frame > 0 else None
        if frame >= 2:
            # Wait for the frame that previously occupied this buffer
            # (taskwait on), so the buffer can be reused.
            prog.taskwait_on(blocks[rows - 1][cols - 1])
        for i in range(rows):
            for j in range(cols):
                decode(
                    blocks.at(i, j - 1),          # left neighbour
                    blocks.at(i - 1, j + 1),      # upper-right neighbour
                    previous.at(i, j) if previous is not None else None,
                    blocks[i][j],
                )
    prog.taskwait()
    return prog


def main() -> None:
    prog = build_wavefront_program()
    trace = prog.build()
    graph = build_dependency_graph(trace)
    print(f"recorded {trace.num_tasks} decode tasks, "
          f"{graph.num_edges} dependency edges, "
          f"max structural parallelism {graph.max_parallelism():.1f}")
    print()

    num_cores = 32
    print(f"Nexus# scalability on {num_cores} cores (flat 100 MHz, Figure 7(a) style):")
    ideal = simulate(trace, IdealManager(), num_cores)
    print(f"  {'ideal (no overhead)':22s} {ideal.speedup_vs_serial:6.2f}x")
    for num_tg in (1, 2, 4, 6, 8):
        manager = NexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg, frequency_mhz=100.0))
        result = simulate(trace, manager, num_cores)
        print(f"  {manager.name:22s} {result.speedup_vs_serial:6.2f}x")

    print()
    print(f"Nexus# at the Table I synthesis frequency (Figure 7(b) style):")
    for num_tg in (2, 6, 8):
        manager = NexusSharpManager(NexusSharpConfig(num_task_graphs=num_tg))
        result = simulate(trace, manager, num_cores)
        print(f"  {manager.name:14s} @ {manager.frequency.mhz:6.2f} MHz  "
              f"{result.speedup_vs_serial:6.2f}x")


if __name__ == "__main__":
    main()
