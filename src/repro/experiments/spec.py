"""Declarative sweep specifications.

A :class:`SweepSpec` names a full experiment grid — workloads × managers
× scheduler policies × core topologies × core counts × seeds — without
running anything.  The grid enumerates to
a deterministic list of :class:`RunPoint` objects, each of which is

* **picklable**, so the runner can fan points out to worker processes,
* **content-addressed**: :meth:`RunPoint.cache_key` hashes the complete
  point configuration (workload identity, manager configuration, core
  count, machine flags), so the on-disk result cache is invalidated
  exactly when the experiment actually changes.

Workloads are referenced either by registry name (regenerated inside the
worker — cheap, and avoids shipping large traces between processes) or as
inline :class:`~repro.trace.trace.Trace` objects (hashed by content).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field as dataclass_field, replace
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.factories import ManagerFactory, describe_factory, parse_manager
from repro.common.errors import ConfigurationError
from repro.system.machine import simulate, simulate_dynamic, simulate_stream
from repro.trace.dynamic import DynamicProgram
from repro.system.results import MachineResult
from repro.system.scheduling import canonical_policy_name, describe_policy
from repro.system.topology import TopologySpec, canonical_topology
from repro.trace.serialization import RESULT_FORMAT_VERSION, json_digest, trace_digest
from repro.trace.stream import TaskStream, limit_stream, truncate_trace
from repro.trace.trace import Trace

#: Bump whenever a change alters simulated behaviour without touching any
#: configuration field (e.g. a manager scheduling fix) — cache keys hash
#: the experiment *configuration* plus this constant and the package
#: version, so behaviour-only changes must invalidate entries manually.
#: The golden-trace tests (tests/golden/) are the guard that notices such
#: changes: a PR that regenerates the goldens must also bump this.
#: v2: grid points carry scheduler and topology axes (result format v2
#: adds per-core utilisation), so every pre-axis cache entry is stale.
CACHE_SCHEMA_VERSION = 2

WorkloadLike = Union[str, Trace, "WorkloadSpec"]
ManagersLike = Union[Mapping[str, ManagerFactory], Sequence[str]]


@functools.lru_cache(maxsize=16)
def _named_trace(name: str, scale: float, seed: Optional[int],
                 max_tasks: Optional[int] = None,
                 depth: Optional[int] = None) -> Trace:
    """Per-process memo of generated registry traces (sweeps reuse them).

    ``max_tasks`` is part of the key so truncated workloads share one
    Trace object across grid cells too — which is what lets the machine's
    per-trace compiled-program cache work for them.  ``depth`` applies to
    dynamic workloads only (the trace is their serial elaboration).
    """
    from repro.workloads.registry import get_workload

    if max_tasks is not None:
        return truncate_trace(_named_trace(name, scale, seed, depth=depth), max_tasks)
    return get_workload(name, scale=scale, seed=seed, depth=depth)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload axis entry: a registry name or an inline trace."""

    name: str
    scale: float = 1.0
    seed: Optional[int] = None
    trace: Optional[Trace] = None
    #: Bound the workload to its first N task submissions (a final
    #: ``taskwait`` is appended when the cut is short; see
    #: :func:`repro.trace.stream.limit_stream`).  ``None`` = whole trace.
    max_tasks: Optional[int] = None
    #: Recursion depth of a *dynamic* workload (fib's n, nqueens' board
    #: size, ...); ``None`` keeps the workload's default.  Only recorded
    #: in descriptions when set, so pre-axis cache keys stay stable.
    depth: Optional[int] = None
    #: Lazily memoised content digest of an inline trace (hashing a large
    #: trace is expensive and describe() runs once per grid cell).
    _digest: Optional[str] = dataclass_field(default=None, repr=False, compare=False)
    #: Lazily memoised truncation of an inline trace (sharing one Trace
    #: object across grid cells keeps its compiled-program cache warm).
    _truncated: Optional[Trace] = dataclass_field(default=None, repr=False, compare=False)

    @classmethod
    def of(cls, workload: WorkloadLike, *, scale: float = 1.0, seed: Optional[int] = None,
           max_tasks: Optional[int] = None) -> "WorkloadSpec":
        if isinstance(workload, WorkloadSpec):
            if max_tasks is None or workload.max_tasks == max_tasks:
                return workload
            if workload.max_tasks is None:
                return replace(workload, max_tasks=max_tasks)
            raise ConfigurationError(
                f"workload {workload.name!r} already bounds max_tasks to "
                f"{workload.max_tasks}, conflicting with the requested {max_tasks}"
            )
        if isinstance(workload, Trace):
            return cls(name=workload.name, trace=workload, max_tasks=max_tasks)
        if isinstance(workload, str):
            return cls(name=workload, scale=scale, seed=seed, max_tasks=max_tasks)
        raise ConfigurationError(f"cannot interpret {workload!r} as a workload")

    def with_seed(self, seed: Optional[int]) -> "WorkloadSpec":
        """Apply a sweep-level seed (inline traces are already fixed)."""
        if seed is None or self.trace is not None:
            return self
        return replace(self, seed=seed)

    def with_depth(self, depth: Optional[int]) -> "WorkloadSpec":
        """Apply a sweep-level depth (dynamic workloads only)."""
        if depth is None or not self.is_dynamic:
            return self
        return replace(self, depth=depth)

    @property
    def is_dynamic(self) -> bool:
        """Whether the workload names a dynamic (spawning) program."""
        from repro.workloads.registry import is_dynamic_workload

        return self.trace is None and is_dynamic_workload(self.name)

    def resolve(self) -> Trace:
        """Materialise the trace (memoised per process for named workloads;
        truncated inline traces are memoised on the spec instance).  For
        dynamic workloads this is the serial elaboration."""
        if self.trace is not None:
            if self.max_tasks is None:
                return self.trace
            if self._truncated is None:
                object.__setattr__(
                    self, "_truncated", truncate_trace(self.trace, self.max_tasks))
            return self._truncated
        if self.max_tasks is None:
            # Same positional key as the internal recursion, so truncated
            # and untruncated cells share one cached base trace.
            return _named_trace(self.name, self.scale, self.seed, depth=self.depth)
        return _named_trace(self.name, self.scale, self.seed, self.max_tasks,
                            depth=self.depth)

    def resolve_stream(self) -> TaskStream:
        """Open the workload as a lazy task stream (no materialisation).

        Named workloads stream straight from their generators, so a
        streaming grid cell never holds the full trace in memory; inline
        traces are already materialised and simply pass through.  A
        *dynamic* workload is wrapped as a plain event stream over its
        serial elaboration: a ``stream`` grid cell must replay the same
        schedule as its materialised twin (only ``RunPoint.dynamic``
        selects the dynamic engine — handing the raw ``DynamicProgram``
        to ``run_stream`` would silently change the science).
        """
        from repro.trace.stream import TraceStream
        from repro.workloads.registry import get_workload_stream

        source: TaskStream = self.trace if self.trace is not None else (
            get_workload_stream(self.name, scale=self.scale, seed=self.seed,
                                depth=self.depth))
        if isinstance(source, DynamicProgram):
            source = TraceStream(source.name, source.iter_events,
                                 metadata=source.metadata)
        return limit_stream(source, self.max_tasks)

    def resolve_dynamic(self):
        """Build the workload's :class:`~repro.trace.dynamic.DynamicProgram`.

        Programs are cheap to build (the machine re-runs them anyway), so
        unlike :meth:`resolve` nothing is memoised.
        """
        from repro.workloads.registry import get_dynamic_program

        if not self.is_dynamic:
            raise ConfigurationError(
                f"workload {self.name!r} is not a dynamic workload")
        return get_dynamic_program(self.name, scale=self.scale, seed=self.seed,
                                   depth=self.depth)

    def describe(self) -> Dict[str, object]:
        if self.trace is not None:
            if self._digest is None:
                object.__setattr__(self, "_digest", trace_digest(self.trace))
            doc: Dict[str, object] = {"name": self.name, "inline_digest": self._digest}
        else:
            doc = {"name": self.name, "scale": self.scale, "seed": self.seed}
        # Only present when set, so pre-axis cache keys stay valid.
        if self.max_tasks is not None:
            doc["max_tasks"] = self.max_tasks
        if self.depth is not None:
            doc["depth"] = self.depth
        return doc


@dataclass(frozen=True)
class RunPoint:
    """One cell of the sweep grid: (workload, manager, scheduler, topology, cores)."""

    workload: WorkloadSpec
    manager_name: str
    factory: ManagerFactory
    cores: int
    validate: bool = False
    keep_schedule: bool = False
    #: Canonical scheduler-policy name (see repro.system.scheduling).
    scheduler: str = "fifo"
    #: Canonical topology-shape string (see repro.system.topology).
    topology: str = "homogeneous"
    #: Replay through :meth:`Machine.run_stream` instead of materialising
    #: the trace (same schedule by the stream-equivalence guarantee, but
    #: bounded memory; per-task times are not collected).
    stream: bool = False
    #: Replay through the *dynamic* engine (:meth:`Machine.run_dynamic`):
    #: the workload's DynamicProgram spawns tasks while the machine runs
    #: instead of replaying its serial elaboration.  Combined with
    #: ``stream`` this selects the dynamic (access-by-access) tracker
    #: path; alone it uses the growable compiled path.
    dynamic: bool = False

    def describe(self) -> Dict[str, object]:
        """Self-describing identity of the point (JSONL / cache key).

        ``scheduler`` and ``topology`` are part of the identity, so the
        content-addressed cache invalidates exactly when either axis
        changes; the structured policy/topology configuration is included
        so renamed-but-identical spellings cannot collide.  ``stream`` is
        part of the identity too (only recorded when set, so pre-axis
        cache keys stay valid): streamed results never collect per-task
        schedules, which makes them a distinct result shape.
        """
        doc: Dict[str, object] = {
            "workload": self.workload.describe(),
            "manager": self.manager_name,
            "manager_config": dict(describe_factory(self.factory)),
            "cores": self.cores,
            "validate": self.validate,
            "keep_schedule": self.keep_schedule,
            "scheduler": self.scheduler,
            "scheduler_config": describe_policy(self.scheduler),
            "topology": self.topology,
            "topology_config": TopologySpec.parse(self.topology).describe(),
        }
        if self.stream:
            doc["stream"] = True
        if self.dynamic:
            doc["dynamic"] = True
        return doc

    @property
    def cacheable(self) -> bool:
        """Whether the point's configuration is fully content-describable.

        Opaque factories (plain callables without ``describe``) hash to
        their qualified name only, so two different configurations could
        collide in the cache; the runner always re-simulates such points
        instead of risking silently stale results.
        """
        return describe_factory(self.factory).get("kind") != "opaque"

    def cache_key(self) -> str:
        """Content hash addressing this point's result on disk.

        The result-document format version and the package version are
        part of the key: bumping either turns every stale cache entry
        into a miss instead of a decode error (or silently stale
        numbers) on a warm re-run.
        """
        import repro

        document = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "result_format": RESULT_FORMAT_VERSION,
            "package_version": repro.__version__,
            "point": self.describe(),
        }
        return json_digest(document)

    def run(self) -> MachineResult:
        """Execute the simulation for this point."""
        if self.dynamic:
            return simulate_dynamic(
                self.workload.resolve_dynamic(),
                self.factory(),
                self.cores,
                compiled=not self.stream,
                validate=self.validate,
                keep_schedule=self.keep_schedule,
                scheduler=self.scheduler,
                topology=self.topology,
            )
        if self.stream:
            return simulate_stream(
                self.workload.resolve_stream(),
                self.factory(),
                self.cores,
                validate=self.validate,
                keep_schedule=self.keep_schedule,
                scheduler=self.scheduler,
                topology=self.topology,
            )
        return simulate(
            self.workload.resolve(),
            self.factory(),
            self.cores,
            validate=self.validate,
            keep_schedule=self.keep_schedule,
            scheduler=self.scheduler,
            topology=self.topology,
        )


def _normalize_axis(name, values, canonicalize):
    """Canonicalise a string axis, rejecting duplicates after aliasing."""
    canonical = tuple(canonicalize(value) for value in values)
    seen = set()
    for value in canonical:
        if value in seen:
            raise ConfigurationError(f"duplicate {name} entry {value!r} in sweep")
        seen.add(value)
    return canonical


def _normalize_managers(managers: ManagersLike) -> Tuple[Tuple[str, ManagerFactory], ...]:
    if isinstance(managers, Mapping):
        pairs = tuple(managers.items())
    else:
        # Accept both short name strings and already-normalized
        # (display name, factory) pairs — the latter is what the frozen
        # spec stores, so dataclasses.replace() round-trips.
        pairs = tuple(
            entry if isinstance(entry, tuple) else parse_manager(entry)
            for entry in managers
        )
    if not pairs:
        raise ConfigurationError("a sweep needs at least one manager")
    seen = set()
    for name, _ in pairs:
        if name in seen:
            raise ConfigurationError(f"duplicate manager name {name!r} in sweep")
        seen.add(name)
    return pairs


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment grid.

    Parameters
    ----------
    workloads:
        Registry names, inline traces, or prebuilt :class:`WorkloadSpec`s.
    managers:
        Mapping of display name to factory, or a sequence of short manager
        names (``ideal``, ``nanos``, ``nexus++``, ``nexus#6``, ...).
    core_counts:
        Worker-core counts to sweep.
    seeds:
        Workload-generator seeds; ``(None,)`` keeps each workload's own
        seed.  Named workloads are regenerated once per seed.
    scale:
        Scale factor applied to named workloads.
    max_cores:
        Optional per-manager core-count cap (the paper runs Nanos only up
        to its 32 physical cores); capped points are skipped.
    validate / keep_schedule:
        Forwarded to :class:`~repro.system.machine.MachineConfig`.
    schedulers:
        Ready-task dispatch policies to sweep (``"fifo"``, ``"sjf"``,
        ``"ljf"``, ``"locality"``; aliases are canonicalised, so
        ``"shortest"`` and ``"sjf"`` name the same axis entry).
    topologies:
        Core-topology shapes to sweep (``"homogeneous"``,
        ``"biglittle[:little_speed]"`` /
        ``"biglittle:<big_fraction>:<little_speed>"``,
        ``"speeds:<s0>,<s1>,..."``), applied to every core count.
    stream:
        Replay every grid cell through the streaming machine path
        (:meth:`Machine.run_stream <repro.system.machine.Machine.
        run_stream>`): bounded memory, identical schedules, no per-task
        times in the results.
    max_tasks:
        Bound every workload to its first ``max_tasks`` submissions (the
        scale axis for trace-size studies); applied per workload via
        :func:`repro.trace.stream.limit_stream`.
    dynamic:
        Replay every grid cell through the dynamic engine
        (:meth:`Machine.run_dynamic <repro.system.machine.Machine.
        run_dynamic>`): the workload's program spawns tasks while the
        machine runs.  Requires dynamic workloads (``fib``, ``nqueens``,
        ``recursive-sort``, ``strassen``); with ``stream`` also set the
        tracker uses its dynamic access-by-access path.
    depths:
        Recursion depths to sweep for dynamic workloads (``(None,)``
        keeps each workload's default); like ``seeds``, the axis only
        multiplies workloads it affects.

    Example
    -------
    >>> spec = SweepSpec(
    ...     workloads=["microbench"],
    ...     managers=["ideal", "nexus#2"],
    ...     core_counts=[1, 4],
    ... )
    >>> spec.num_points()
    4
    >>> [point.cores for point in spec.points()]
    [1, 4, 1, 4]
    """

    workloads: Tuple[WorkloadSpec, ...]
    managers: Tuple[Tuple[str, ManagerFactory], ...]
    core_counts: Tuple[int, ...]
    seeds: Tuple[Optional[int], ...] = (None,)
    max_cores: Tuple[Tuple[str, int], ...] = ()
    validate: bool = False
    keep_schedule: bool = False
    schedulers: Tuple[str, ...] = ("fifo",)
    topologies: Tuple[str, ...] = ("homogeneous",)
    stream: bool = False
    max_tasks: Optional[int] = None
    dynamic: bool = False
    depths: Tuple[Optional[int], ...] = (None,)
    name: str = "sweep"

    def __init__(
        self,
        workloads: Sequence[WorkloadLike],
        managers: ManagersLike,
        core_counts: Sequence[int],
        *,
        seeds: Sequence[Optional[int]] = (None,),
        scale: float = 1.0,
        max_cores: Optional[Mapping[str, int]] = None,
        validate: bool = False,
        keep_schedule: bool = False,
        schedulers: Sequence[str] = ("fifo",),
        topologies: Sequence[str] = ("homogeneous",),
        stream: bool = False,
        max_tasks: Optional[int] = None,
        dynamic: bool = False,
        depths: Sequence[Optional[int]] = (None,),
        name: str = "sweep",
    ) -> None:
        if not workloads:
            raise ConfigurationError("a sweep needs at least one workload")
        if not core_counts:
            raise ConfigurationError("core_counts must not be empty")
        if not seeds:
            raise ConfigurationError("seeds must not be empty (use (None,) for defaults)")
        if not depths:
            raise ConfigurationError("depths must not be empty (use (None,) for defaults)")
        if not schedulers:
            raise ConfigurationError("schedulers must not be empty (use ('fifo',) for the default)")
        if not topologies:
            raise ConfigurationError(
                "topologies must not be empty (use ('homogeneous',) for the default)"
            )
        for cores in core_counts:
            if cores <= 0:
                raise ConfigurationError(f"core counts must be positive, got {cores}")
        if max_tasks is not None and max_tasks <= 0:
            raise ConfigurationError(f"max_tasks must be positive, got {max_tasks}")
        workload_specs = tuple(
            WorkloadSpec.of(w, scale=scale, max_tasks=max_tasks) for w in workloads)
        if dynamic:
            if max_tasks is not None:
                raise ConfigurationError(
                    "max_tasks does not apply to dynamic replays (the task set "
                    "is produced by the running program)")
            not_dynamic = [w.name for w in workload_specs if not w.is_dynamic]
            if not_dynamic:
                raise ConfigurationError(
                    f"dynamic sweeps need dynamic workloads; {', '.join(not_dynamic)} "
                    "are static (see repro.workloads.registry.DYNAMIC_PROGRAMS)")
        if any(d is not None for d in depths):
            # Like seeds, depth multiplies only workloads it affects —
            # but a grid where it affects nothing is a spelling mistake.
            if not any(w.is_dynamic for w in workload_specs):
                raise ConfigurationError(
                    "the depths axis applies to dynamic workloads only")
            for depth in depths:
                if depth is not None and depth <= 0:
                    raise ConfigurationError(f"depths must be positive, got {depth}")
        object.__setattr__(self, "workloads", workload_specs)
        object.__setattr__(self, "managers", _normalize_managers(managers))
        object.__setattr__(self, "core_counts", tuple(int(c) for c in core_counts))
        object.__setattr__(self, "seeds", tuple(seeds))
        object.__setattr__(self, "max_cores", tuple(sorted(dict(max_cores or {}).items())))
        object.__setattr__(self, "validate", bool(validate))
        object.__setattr__(self, "keep_schedule", bool(keep_schedule))
        object.__setattr__(self, "schedulers", _normalize_axis(
            "schedulers", schedulers, canonical_policy_name))
        object.__setattr__(self, "topologies", _normalize_axis(
            "topologies", topologies, canonical_topology))
        object.__setattr__(self, "stream", bool(stream))
        object.__setattr__(self, "max_tasks", max_tasks)
        object.__setattr__(self, "dynamic", bool(dynamic))
        object.__setattr__(self, "depths", tuple(depths))
        object.__setattr__(self, "name", name)

    # -- grid enumeration --------------------------------------------------
    def points(self) -> Iterator[RunPoint]:
        """Enumerate the grid in deterministic order.

        Order: workloads (outer) × seeds × managers × schedulers ×
        topologies × core counts (inner) — the JSONL stream, the cache and
        the parallel runner all preserve this order, which is what makes
        ``n_jobs`` invisible in the output.
        """
        caps = dict(self.max_cores)
        for seeded in self.effective_workloads():
            for manager_name, factory in self.managers:
                cap = caps.get(manager_name)
                for scheduler in self.schedulers:
                    for topology in self.topologies:
                        for cores in self.core_counts:
                            if cap is not None and cores > cap:
                                continue
                            yield RunPoint(
                                workload=seeded,
                                manager_name=manager_name,
                                factory=factory,
                                cores=cores,
                                validate=self.validate,
                                keep_schedule=self.keep_schedule,
                                scheduler=scheduler,
                                topology=topology,
                                stream=self.stream,
                                dynamic=self.dynamic,
                            )

    def effective_workloads(self) -> Tuple[WorkloadSpec, ...]:
        """The workload axis after applying the seed and depth axes.

        Each axis multiplies only workloads it actually affects: inline
        traces ignore seeds, static workloads ignore depths, and repeated
        values would otherwise re-run identical points.
        """
        effective: list[WorkloadSpec] = []
        for workload in self.workloads:
            emitted: list[WorkloadSpec] = []
            for seed in self.seeds:
                for depth in self.depths:
                    varied = workload.with_seed(seed).with_depth(depth)
                    if any(varied == previous for previous in emitted):
                        continue
                    emitted.append(varied)
            effective.extend(emitted)
        return tuple(effective)

    def num_points(self) -> int:
        """Number of grid cells (after per-manager core caps)."""
        return sum(1 for _ in self.points())

    def derive(self, **overrides: object) -> "SweepSpec":
        """A copy of this grid with the given axes replaced.

        The hook behind rung-labelled sweeps: the tuner compiles one base
        grid into successive halving rungs (same machine flags, different
        ``workloads`` / ``managers`` / ``name``) without restating the
        whole spec.  Construction re-runs normalisation and validation,
        so overrides may use the friendly input forms (registry names,
        short manager names, alias spellings) — and because cache keys
        are per :class:`RunPoint`, a derived grid re-addresses exactly
        the cells it shares with its base.

        >>> base = SweepSpec(["microbench"], ["ideal"], [2])
        >>> rung = base.derive(core_counts=[2, 4], name="tune:rung0")
        >>> rung.num_points(), rung.name
        (2, 'tune:rung0')
        """
        return replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """Serialisable description of the whole grid.

        ``stream`` is recorded only when set, so pre-streaming spec
        hashes stay stable (``max_tasks`` already shows up through the
        per-workload descriptions).
        """
        doc: Dict[str, object] = {
            "name": self.name,
            "workloads": [w.describe() for w in self.workloads],
            "managers": [
                {"name": name, "config": dict(describe_factory(factory))}
                for name, factory in self.managers
            ],
            "core_counts": list(self.core_counts),
            "seeds": list(self.seeds),
            "max_cores": dict(self.max_cores),
            "validate": self.validate,
            "keep_schedule": self.keep_schedule,
            "schedulers": list(self.schedulers),
            "topologies": list(self.topologies),
        }
        if self.stream:
            doc["stream"] = True
        if self.dynamic:
            doc["dynamic"] = True
        if any(depth is not None for depth in self.depths):
            doc["depths"] = list(self.depths)
        return doc

    def spec_hash(self) -> str:
        """Content hash of the grid (reported in sweep summaries/JSONL).

        The cosmetic ``name`` is excluded: two grids that run the same
        points hash identically regardless of what they are called.
        """
        content = {k: v for k, v in self.describe().items() if k != "name"}
        return json_digest({"cache_schema": CACHE_SCHEMA_VERSION, "spec": content})
