"""The task-manager interface driven by the machine simulator.

The paper's testbench "simulates the RTS.  It submits new tasks to
Nexus#, receives ready task information from it, schedules ready tasks to
worker cores and simulates their execution, and finally notifies Nexus#
of finished tasks" (Section V-B).  The interface below is exactly that
contract, expressed in simulation time (micro-seconds):

* :meth:`TaskManagerModel.submit` — the master thread hands a task to the
  manager at a given time; the manager reports when the master may
  continue (back-pressure / software cost) and which tasks it has already
  determined to be ready, with their ready times.
* :meth:`TaskManagerModel.finish` — a worker core reports a finished task;
  the manager reports which waiting tasks become ready, and when.

All manager models are *passive*: they never call back into the machine;
they only answer these two calls with timestamps, which keeps them easy
to unit-test in isolation.
"""

from __future__ import annotations

import abc
from typing import Mapping, NamedTuple

from repro.trace.task import TaskDescriptor

# The outcome records are NamedTuples: one SubmitOutcome and one
# FinishOutcome is created per task on the simulation hot path, and tuple
# construction is several times cheaper than a frozen-dataclass __init__.


class ReadyNotification(NamedTuple):
    """A task reported ready by the manager at ``time_us``."""

    task_id: int
    time_us: float


class SubmitOutcome(NamedTuple):
    """Result of submitting one task to a manager.

    Attributes
    ----------
    accept_time_us:
        Time at which the master thread regains control and may submit the
        next trace event.  For hardware managers this models the IO-unit
        back-pressure (the PCIe-style transfer of the task descriptor);
        for software managers it additionally contains the task-creation
        and dependency-analysis work performed on the master core.
    ready:
        Ready notifications produced directly by this submission (the
        submitted task itself when it has no dependencies — possibly
        other tasks for managers that defer work).
    """

    accept_time_us: float
    ready: tuple[ReadyNotification, ...] = ()


class LaneKernelSpec(NamedTuple):
    """Constant-folded description of a manager for the batch lane engine.

    The vectorized batch backend (:mod:`repro.sim.batch`) advances many
    independent simulation runs ("lanes") in lockstep.  It cannot call
    back into stateful manager objects per event — each lane owns flat
    per-lane state instead — so a manager that wants its lanes on the
    vector kernel must describe itself as pure constants.  Two kernel
    kinds exist today:

    * ``"ideal"`` — zero-overhead dependency resolution (submission and
      retirement cost no simulated time);
    * ``"nanos"`` — the Nanos software-runtime cost model: serial
      master-side task creation plus a single runtime lock whose
      reservations the lane kernel replays arithmetically (exactly
      :meth:`repro.sim.resource.SerialResource.reserve`).

    The hardware managers (Nexus++/Nexus#) model history-dependent
    pipeline contention (per-task-graph ports, arbiters, set-conflict
    stalls) that has no constant folding; they return ``None`` from
    :meth:`TaskManagerModel.lane_kernel` and their lanes run on the
    scalar engine instead (see ``repro.sim.batch.lane_fallback_reason``).
    """

    kind: str
    worker_overhead_us: float = 0.0
    creation_base_us: float = 0.0
    creation_per_param_us: float = 0.0
    insert_lock_us: float = 0.0
    insert_lock_per_param_us: float = 0.0
    finish_lock_us: float = 0.0
    wakeup_per_task_us: float = 0.0


class FinishOutcome(NamedTuple):
    """Result of notifying a manager that a task finished.

    Attributes
    ----------
    ready:
        Tasks that became ready because of this completion, with the time
        the manager reports them (i.e. when a free core could start them).
    notify_done_us:
        Time at which the finished-task notification itself has been fully
        processed; only used for statistics.
    """

    ready: tuple[ReadyNotification, ...] = ()
    notify_done_us: float = 0.0


class TaskManagerModel(abc.ABC):
    """Abstract base class of every dependency-resolution scheme."""

    #: Human-readable name used in reports ("Nanos", "Nexus++", "Nexus# 6TG").
    name: str = "abstract"

    #: Whether the manager supports the ``taskwait on`` pragma.  When it
    #: does not (Nexus++), the machine degrades the barrier to a full
    #: ``taskwait``, reproducing the behaviour described in Section III.
    supports_taskwait_on: bool = True

    #: Extra time (µs) a worker core spends per task besides the task body
    #: (software scheduling overhead).  Zero for the hardware managers,
    #: matching the paper's "no communication or other non-dependency
    #: resolution overhead is accounted for".
    worker_overhead_us: float = 0.0

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state so the same instance can run another trace."""

    @abc.abstractmethod
    def submit(self, task: TaskDescriptor, time_us: float) -> SubmitOutcome:
        """Submit ``task`` at ``time_us`` and return the outcome."""

    @abc.abstractmethod
    def finish(self, task_id: int, time_us: float) -> FinishOutcome:
        """Notify the manager at ``time_us`` that ``task_id`` finished."""

    # -- optional hooks ------------------------------------------------------
    def prepare_trace(self, trace) -> None:
        """Optional hook: the machine announces the trace it will replay.

        Called by :meth:`repro.system.machine.Machine.run` after
        :meth:`reset` and before the first :meth:`submit`.  The default
        forwards the trace's compiled access program to
        :meth:`prepare_program`; managers that run a
        :class:`~repro.taskgraph.tracker.DependencyTracker` bind it there
        so dependency resolution runs over preresolved int arrays.
        Streaming replays (:meth:`~repro.system.machine.Machine.run_stream`)
        never call it — :meth:`reset` must therefore also undo whatever
        this hook set up.
        """
        self.prepare_program(trace.access_program())

    def prepare_program(self, program) -> None:
        """Optional hook: bind a compiled access program for the next run.

        ``program`` is a :class:`~repro.trace.compiled.
        CompiledAccessProgram`; it may be *empty and growable* — dynamic
        runs (:meth:`repro.system.machine.Machine.run_dynamic`) bind a
        fresh program per run and intern each task as it is spawned, so
        a binding manager must tolerate tasks appearing after the bind
        (the tracker's resolution extends itself lazily).  The default
        is a no-op: managers without a tracker simply ignore programs.
        """

    def lane_kernel(self) -> "LaneKernelSpec | None":
        """Constant description for the batch lane engine, or ``None``.

        Returning a :class:`LaneKernelSpec` declares that this manager's
        behaviour is fully captured by the spec's constants, so a batch
        run (:meth:`repro.system.machine.Machine.run_batch`) may execute
        its lanes on the vectorized kernel in :mod:`repro.sim.batch`
        instead of calling :meth:`submit`/:meth:`finish` per event.  The
        lane kernel must be **byte-identical** to the scalar path — the
        golden batch-equivalence suite and the lane-differential fuzz
        tests in ``tests/batch/`` pin this.  The default ``None`` routes
        every lane through the scalar engine, which is always correct.
        """
        return None

    def abandon_run(self) -> None:
        """A run died mid-flight: drop every per-run binding *now*.

        Called by the machine when a replay raises, **before** the
        exception propagates.  Without it, a failed run leaves the
        manager's tracker bound to the trace's shared compiled program
        with tasks still marked in flight — poisoning any later direct
        use of the manager (e.g. ``bind_program`` refuses to rebind) in
        the same process.  The default simply :meth:`reset`\\ s, which
        every manager already guarantees to clear bindings.
        """
        self.reset()

    def describe(self) -> Mapping[str, object]:
        """Return a serialisable description of the configuration."""
        return {"name": self.name, "supports_taskwait_on": self.supports_taskwait_on}

    def statistics(self) -> Mapping[str, object]:
        """Return manager-internal statistics collected during a run."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
