"""Deterministic load generation against a serving deployment.

The in-process traffic source shared by the serving test harness
(``tests/serve/``), the CI smoke job and ``benchmarks/bench_serving.py``:
a seeded request mix expands to a reproducible request list, a thread
pool of keep-alive clients replays it, and the report aggregates
latency quantiles, status counts and throughput.

Determinism contract: ``build_requests(seed, n)`` is a pure function of
its arguments (one ``random.Random(seed)`` stream), so every run of the
load test offers the byte-same request sequence — which is what lets the
warm-cache assertions ("second pass simulates nothing") work at all.
"""

from __future__ import annotations

import math
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.client import ServeClient, ServeError, ServeSaturated

__all__ = ["LoadReport", "RequestMix", "build_requests", "default_mix", "run_load"]


@dataclass(frozen=True)
class RequestMix:
    """A weighted set of ``/v1/simulate`` request templates."""

    templates: Tuple[Dict[str, Any], ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.templates) != len(self.weights) or not self.templates:
            raise ValueError("mix needs equally many templates and weights (>= 1)")


def default_mix(scale: float = 0.05) -> RequestMix:
    """The standard serving mix: small cells across managers and axes."""
    return RequestMix(
        templates=(
            {"workload": "microbench", "manager": "ideal", "cores": 2, "scale": scale},
            {"workload": "microbench", "manager": "nexus#2", "cores": 4, "scale": scale},
            {"workload": "c-ray", "manager": "ideal", "cores": 2, "scale": scale},
            {"workload": "c-ray", "manager": "nanos", "cores": 4, "scale": scale},
            {"workload": "sparselu", "manager": "ideal", "cores": 4, "scale": scale},
        ),
        weights=(3.0, 2.0, 2.0, 1.0, 1.0),
    )


def build_requests(
    seed: int,
    count: int,
    mix: Optional[RequestMix] = None,
    *,
    seeds_per_template: int = 3,
) -> List[Dict[str, Any]]:
    """Expand a seeded mix into ``count`` concrete request bodies.

    Each drawn template is varied with one of ``seeds_per_template``
    workload seeds, so the sequence exercises both dedupe (repeated
    identical requests) and genuinely distinct cells, in a proportion
    that is a pure function of ``seed``.
    """
    mix = mix or default_mix()
    rng = random.Random(seed)
    requests: List[Dict[str, Any]] = []
    for _ in range(count):
        template = rng.choices(mix.templates, weights=mix.weights, k=1)[0]
        body = dict(template)
        body["seed"] = rng.randrange(seeds_per_template)
        requests.append(body)
    return requests


@dataclass
class LoadReport:
    """Aggregated outcome of one load run.

    Retried requests are accounted **separately** from first-attempt
    outcomes: ``latencies_s`` holds only requests that succeeded on
    their first attempt (the server's intrinsic service latency), while
    ``e2e_latencies_s`` holds every eventual success *including* 429
    back-off-and-retry time (what a well-behaved client experienced).
    Folding retries into one list would let saturation retries silently
    inflate — or mask — the latency statistics.
    """

    offered: int = 0
    ok: int = 0
    saturated: int = 0
    errors: int = 0
    cached: int = 0
    #: Requests that needed at least one retry (whatever their final
    #: status) — disjoint accounting, not a subtraction from ``ok``.
    retried: int = 0
    wall_s: float = 0.0
    #: First-attempt successes only (seconds).
    latencies_s: List[float] = field(default_factory=list)
    #: Every eventual success, retries and back-off included (seconds).
    e2e_latencies_s: List[float] = field(default_factory=list)
    retry_afters: List[float] = field(default_factory=list)
    error_messages: List[str] = field(default_factory=list)

    @staticmethod
    def _rank(samples: List[float], q: float) -> Optional[float]:
        # True nearest-rank: ceil(q*n)-1 is the smallest index covering a
        # q fraction of the sample.  round(q*(n-1)) would interpolate with
        # round-half-even and understate p99 for n up to 100.
        if not samples:
            return None
        ordered = sorted(samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def percentile(self, q: float) -> Optional[float]:
        """First-attempt latency quantile in seconds (nearest-rank)."""
        return self._rank(self.latencies_s, q)

    def e2e_percentile(self, q: float) -> Optional[float]:
        """End-to-end latency quantile in seconds (nearest-rank)."""
        return self._rank(self.e2e_latencies_s, q)

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> Dict[str, Any]:
        p50 = self.percentile(0.50)
        p99 = self.percentile(0.99)
        e50 = self.e2e_percentile(0.50)
        e99 = self.e2e_percentile(0.99)
        return {
            "offered": self.offered,
            "ok": self.ok,
            "saturated_429": self.saturated,
            "errors": self.errors,
            "cached": self.cached,
            "retried": self.retried,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_latency_ms": None if p50 is None else round(p50 * 1e3, 3),
            "p99_latency_ms": None if p99 is None else round(p99 * 1e3, 3),
            "p50_e2e_ms": None if e50 is None else round(e50 * 1e3, 3),
            "p99_e2e_ms": None if e99 is None else round(e99 * 1e3, 3),
            "all_429s_carried_retry_after": (
                len(self.retry_afters) == self.saturated
                and all(value >= 1.0 for value in self.retry_afters)
            ),
        }


def run_load(
    host: str,
    port: int,
    requests: Sequence[Dict[str, Any]],
    *,
    concurrency: int = 8,
    retry_on_429: bool = False,
    max_retries: int = 20,
) -> LoadReport:
    """Replay ``requests`` against ``host:port`` with a client-thread pool.

    Each worker thread owns one keep-alive :class:`ServeClient`.  With
    ``retry_on_429`` the generator honours ``Retry-After`` (bounded by
    ``max_retries``) — the well-behaved-client mode; without it a 429 is
    terminal for that request — the measurement mode for saturation
    studies.
    """
    report = LoadReport(offered=len(requests))

    # status, first-attempt latency, end-to-end latency, retry_after,
    # cached, message, needed-a-retry
    Outcome = Tuple[str, float, float, float, bool, str, bool]

    def one(client: ServeClient, body: Dict[str, Any]) -> Outcome:
        started = time.monotonic()
        first_latency = -1.0  # set when the first attempt resolves
        attempts = 0
        while True:
            try:
                document = client.simulate(**body)
                now = time.monotonic()
                if first_latency < 0:
                    first_latency = now - started
                return ("ok", first_latency, now - started, 0.0,
                        bool(document.get("cached")), "", attempts > 0)
            except ServeSaturated as exc:
                now = time.monotonic()
                if first_latency < 0:
                    first_latency = now - started
                attempts += 1
                if retry_on_429 and attempts <= max_retries:
                    time.sleep(min(exc.retry_after_s, 0.2))
                    continue
                return ("saturated", first_latency, now - started,
                        exc.retry_after_s, False, str(exc), attempts > 1)
            except ServeError as exc:
                now = time.monotonic()
                if first_latency < 0:
                    first_latency = now - started
                return ("error", first_latency, now - started, 0.0, False,
                        str(exc), attempts > 0)
            except OSError as exc:
                now = time.monotonic()
                if first_latency < 0:
                    first_latency = now - started
                return ("error", first_latency, now - started, 0.0, False,
                        f"{type(exc).__name__}: {exc}", attempts > 0)

    def worker(chunk: Sequence[Dict[str, Any]]) -> List[Outcome]:
        # retry=None: the generator's own 429 loop is the only retry
        # mechanism, so first-attempt measurements stay uncontaminated
        # by the client library's internal transport retries.
        with ServeClient(host, port, retry=None) as client:
            return [one(client, body) for body in chunk]

    concurrency = max(1, min(concurrency, len(requests) or 1))
    chunks: List[List[Dict[str, Any]]] = [[] for _ in range(concurrency)]
    for index, body in enumerate(requests):
        chunks[index % concurrency].append(body)

    started = time.monotonic()
    with ThreadPoolExecutor(max_workers=concurrency,
                            thread_name_prefix="loadgen") as pool:
        outcomes = [item for chunk_result in pool.map(worker, chunks)
                    for item in chunk_result]
    report.wall_s = time.monotonic() - started

    for status, first, e2e, retry_after, cached, message, was_retried in outcomes:
        if was_retried:
            report.retried += 1
        if status == "ok":
            report.ok += 1
            report.e2e_latencies_s.append(e2e)
            if not was_retried:
                report.latencies_s.append(first)
            if cached:
                report.cached += 1
        elif status == "saturated":
            report.saturated += 1
            report.retry_afters.append(retry_after)
        else:
            report.errors += 1
            if len(report.error_messages) < 10:
                report.error_messages.append(message)
    return report
