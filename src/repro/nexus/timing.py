"""Cycle-latency parameters of the Nexus++ and Nexus# pipelines.

Every number below is taken from the paper:

* **Nexus++** (Section III-A, Figure 1, 4-parameter example): the Input
  Parser needs "two cycles to receive every memory address in the task's
  input/output list, plus 4 cycles for the header word and
  synchronization, giving 12 cycles per task"; the Insert stage "needs 18
  cycles for our 4-parameter task example"; the Write Back stage
  "needs 3 cycles".  We generalise the two first stages linearly in the
  parameter count: ``4 + 2·P`` and ``2 + 4·P`` (both reproduce the quoted
  numbers for P = 4).
* **Nexus#** (Section IV-D, Figures 4/5): header 2 cycles (IPh), 2 cycles
  per parameter (IP), 1 cycle Task-Pool write (IPf), 3-cycle FIFO
  fall-through, 5 cycles per parameter insertion (IN), arbiter gather
  (AR) — 1 cycle per task-graph result with 2 cycles to conclude a whole
  task in the best case —, 3-cycle ready FIFO, 3-cycle Write Back (WB).

The synthesis frequencies come from Table I; the scalability study of
Figure 7(a) additionally runs every configuration at a flat 100 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Union

from repro.common.errors import ConfigurationError
from repro.common.validation import check_non_negative, check_positive

#: Maximum test frequency (MHz) per Nexus# task-graph count, from Table I.
#: Nexus++ is listed under key 0 for convenience.
NEXUS_SHARP_TEST_FREQUENCIES_MHZ: dict[int, float] = {
    1: 100.00,
    2: 100.00,
    4: 83.33,
    6: 55.56,
    8: 41.66,
}

#: Maximum *reported* (synthesis) frequencies, also from Table I.
NEXUS_SHARP_MAX_FREQUENCIES_MHZ: dict[int, float] = {
    1: 112.63,
    2: 112.63,
    4: 85.26,
    6: 55.66,
    8: 43.53,
}

#: Nexus++ synthesis/test frequency on the ZC706 (Table I, first row).
NEXUS_PP_TEST_FREQUENCY_MHZ: float = 100.00
NEXUS_PP_MAX_FREQUENCY_MHZ: float = 114.44


def synthesis_frequency_mhz(num_task_graphs: int, *, use_max: bool = False) -> float:
    """Synthesis (Table I) frequency for a Nexus# configuration.

    Configurations not synthesised in the paper (3, 5, 7 task graphs) are
    interpolated linearly between the neighbouring entries, which matches
    the trend of Table I (frequency degrades as the arbiter fan-in grows).
    """
    table = NEXUS_SHARP_MAX_FREQUENCIES_MHZ if use_max else NEXUS_SHARP_TEST_FREQUENCIES_MHZ
    if num_task_graphs in table:
        return table[num_task_graphs]
    known = sorted(table)
    if num_task_graphs < known[0]:
        return table[known[0]]
    if num_task_graphs > known[-1]:
        # Extrapolate with the slope of the last segment, clamped to stay positive.
        x0, x1 = known[-2], known[-1]
        slope = (table[x1] - table[x0]) / (x1 - x0)
        return max(1.0, table[x1] + slope * (num_task_graphs - x1))
    lower = max(k for k in known if k < num_task_graphs)
    upper = min(k for k in known if k > num_task_graphs)
    fraction = (num_task_graphs - lower) / (upper - lower)
    return table[lower] + fraction * (table[upper] - table[lower])


@dataclass(frozen=True)
class NexusPlusPlusTiming:
    """Cycle latencies of the Nexus++ 3-stage pipeline."""

    #: Input Parser: header + synchronisation cycles per task.
    input_header_cycles: int = 4
    #: Input Parser: cycles per parameter (two 32-bit PCIe packets).
    input_cycles_per_param: int = 2
    #: Insert stage: fixed cycles per task.
    insert_base_cycles: int = 2
    #: Insert stage: cycles per parameter.
    insert_cycles_per_param: int = 4
    #: Write Back stage: cycles per ready task.
    writeback_cycles: int = 3
    #: Finished-task notification transfer cycles (task id over the IO unit).
    finish_notify_cycles: int = 2
    #: Finished-task table-cleanup cycles per parameter (second pipeline).
    finish_cleanup_cycles_per_param: int = 4
    #: Finished-task fixed cleanup cycles.
    finish_cleanup_base_cycles: int = 2
    #: Cycles to kick off one waiting task from a kick-off list.
    kickoff_cycles_per_waiter: int = 1
    #: Penalty when an insertion hits a structurally full set.
    set_conflict_stall_cycles: int = 20

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            check_non_negative(name, getattr(self, name))

    def input_cycles(self, num_params: int) -> int:
        """Input Parser occupancy for a task with ``num_params`` parameters."""
        return self.input_header_cycles + self.input_cycles_per_param * num_params

    def insert_cycles(self, num_params: int) -> int:
        """Insert-stage occupancy for a task with ``num_params`` parameters."""
        return self.insert_base_cycles + self.insert_cycles_per_param * num_params

    def cleanup_cycles(self, num_params: int) -> int:
        """Finished-task cleanup occupancy for ``num_params`` parameters."""
        return self.finish_cleanup_base_cycles + self.finish_cleanup_cycles_per_param * num_params

    @classmethod
    def tightly_coupled(cls) -> "NexusPlusPlusTiming":
        """Timing preset without the PCIe-style transfer overhead.

        Used for experiments that drive the task-graph logic directly
        (the Gaussian-elimination micro-benchmark of Figure 9, which is
        "not trace-based" and models the on-chip integration the paper
        targets): descriptor words arrive in one cycle each and finished
        notifications bypass the bus serialisation.
        """
        return cls(
            input_header_cycles=1,
            input_cycles_per_param=1,
            insert_base_cycles=1,
            insert_cycles_per_param=2,
            writeback_cycles=2,
            finish_notify_cycles=1,
            finish_cleanup_base_cycles=1,
            finish_cleanup_cycles_per_param=2,
        )


@dataclass(frozen=True)
class NexusSharpTiming:
    """Cycle latencies of the Nexus# 4-stage distributed pipeline."""

    #: IPh: cycles to receive the header word (function pointer + #params).
    input_header_cycles: int = 2
    #: IP: cycles per parameter on the input link (two 32-bit packets).
    input_cycles_per_param: int = 2
    #: IPf: cycles to write the task descriptor to the Task Pool.
    taskpool_write_cycles: int = 1
    #: Fall-through latency of the New Args. / Finished Args. buffers.
    args_fifo_latency_cycles: int = 3
    #: IN: insertion cycles per parameter at a task graph.
    insert_cycles_per_param: int = 5
    #: AR: arbiter cycles to collect one per-task-graph result.
    arbiter_cycles_per_result: int = 1
    #: Arbiter cycles to conclude the final dependence count of a task.
    arbiter_conclude_cycles: int = 1
    #: Fall-through latency of the Internal Ready Tasks buffer.
    ready_fifo_latency_cycles: int = 3
    #: WB: cycles to read the Function Pointers table and forward one ready task.
    writeback_cycles: int = 3
    #: Finished-task notification transfer cycles (task id over the IO unit).
    finish_notify_cycles: int = 2
    #: Cycles for the Input Parser to read a finished task's I/O list from
    #: the Task Pool (per task).
    taskpool_read_cycles: int = 1
    #: Cycles for the Input Parser to distribute one finished-task address.
    finish_distribute_cycles_per_param: int = 1
    #: Task-graph cycles to update/delete the table entry of one finished
    #: address (kick-off list walk excluded).
    finish_update_cycles_per_param: int = 5
    #: Task-graph cycles to emit one waiting task from a kick-off list.
    kickoff_cycles_per_waiter: int = 1
    #: Arbiter cycles to decrement the dependence count of one waiting task.
    arbiter_decrement_cycles: int = 1
    #: Penalty when an insertion hits a structurally full set.
    set_conflict_stall_cycles: int = 20

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            check_non_negative(name, getattr(self, name))

    def input_cycles(self, num_params: int) -> int:
        """Total Input Parser occupancy for one new task."""
        return (
            self.input_header_cycles
            + self.input_cycles_per_param * num_params
            + self.taskpool_write_cycles
        )

    def param_forward_offset_cycles(self, param_index: int) -> int:
        """Cycles after the start of input parsing at which parameter
        ``param_index`` (0-based) has been received and forwarded."""
        return self.input_header_cycles + self.input_cycles_per_param * (param_index + 1)

    def finish_input_cycles(self, num_params: int) -> int:
        """Input Parser occupancy for redistributing one finished task."""
        return (
            self.finish_notify_cycles
            + self.taskpool_read_cycles
            + self.finish_distribute_cycles_per_param * num_params
        )

    def finish_param_forward_offset_cycles(self, param_index: int) -> int:
        """Cycles after the start of finish processing at which address
        ``param_index`` has been forwarded to its task graph."""
        return (
            self.finish_notify_cycles
            + self.taskpool_read_cycles
            + self.finish_distribute_cycles_per_param * (param_index + 1)
        )

    @classmethod
    def tightly_coupled(cls) -> "NexusSharpTiming":
        """Timing preset without the PCIe-style transfer overhead.

        Used for experiments that drive the task-graph logic directly
        (the Gaussian-elimination micro-benchmark of Figure 9, which is
        "not trace-based"): descriptor words arrive in one cycle each,
        FIFO fall-through is a single cycle and insertions take the
        table-lookup latency only.
        """
        return cls(
            input_header_cycles=1,
            input_cycles_per_param=1,
            taskpool_write_cycles=1,
            args_fifo_latency_cycles=1,
            insert_cycles_per_param=2,
            ready_fifo_latency_cycles=1,
            writeback_cycles=2,
            finish_notify_cycles=1,
            taskpool_read_cycles=1,
            finish_distribute_cycles_per_param=1,
            finish_update_cycles_per_param=2,
        )


class OffsetTables:
    """Per-parameter-index cycle→µs latency tables, shared process-wide.

    Both hardware managers fold their pipeline arithmetic into tables
    indexed by parameter count / parameter index, grown on demand as
    wider tasks appear.  Every entry is a pure function of the timing
    parameters and the clock period, so the tables for a given
    ``(timing, cycle_us)`` pair are identical no matter which manager
    instance grows them — and a sweep (or a batch of lanes) that
    constructs hundreds of managers with the same configuration would
    otherwise re-derive the very same floats hundreds of times.

    :func:`shared_offset_tables` memoises instances on that pair (both
    timing dataclasses are frozen, hence hashable by value).  The lists
    only ever grow and existing entries are never rewritten, so manager
    instances alias them directly; ``reset()`` keeping grown tables —
    already the managers' behaviour — is what makes the sharing safe.
    """

    __slots__ = (
        "_timing", "_cycle_us",
        "input_us", "insert_cycles", "cleanup_cycles",
        "fwd_us", "fin_fwd_us", "fin_input_us",
    )

    def __init__(
        self,
        timing: Union[NexusPlusPlusTiming, "NexusSharpTiming"],
        cycle_us: float,
    ) -> None:
        self._timing = timing
        self._cycle_us = cycle_us
        #: Input Parser occupancy (µs) by parameter count (both managers).
        self.input_us: List[float] = []
        #: Nexus++ Insert-stage cycles by parameter count.
        self.insert_cycles: List[int] = []
        #: Nexus++ finished-task cleanup cycles by parameter count.
        self.cleanup_cycles: List[int] = []
        #: Nexus# submit-side parameter forward offsets (µs) by index.
        self.fwd_us: List[float] = []
        #: Nexus# finish-side parameter forward offsets (µs) by index.
        self.fin_fwd_us: List[float] = []
        #: Nexus# finish-redistribution occupancy (µs) by parameter count.
        self.fin_input_us: List[float] = []

    # -- Nexus++ ---------------------------------------------------------------
    def grow_pp(self, count: int) -> None:
        """Extend the Nexus++ tables to cover ``count`` parameters."""
        timing = self._timing
        cycle_us = self._cycle_us
        input_us = self.input_us
        while len(input_us) <= count:
            input_us.append(timing.input_cycles(len(input_us)) * cycle_us)
        insert_cycles = self.insert_cycles
        while len(insert_cycles) <= count:
            insert_cycles.append(timing.insert_cycles(len(insert_cycles)))
        cleanup_cycles = self.cleanup_cycles
        while len(cleanup_cycles) <= count:
            cleanup_cycles.append(timing.cleanup_cycles(len(cleanup_cycles)))

    # -- Nexus# ----------------------------------------------------------------
    def grow_sharp_submit(self, count: int) -> None:
        """Extend the Nexus# submit-side tables to cover ``count`` parameters."""
        timing = self._timing
        cycle_us = self._cycle_us
        fwd = self.fwd_us
        while len(fwd) < count:
            fwd.append(timing.param_forward_offset_cycles(len(fwd)) * cycle_us)
        inp = self.input_us
        while len(inp) <= count:
            inp.append(timing.input_cycles(len(inp)) * cycle_us)

    def grow_sharp_finish(self, count: int) -> None:
        """Extend the Nexus# finish-side tables to cover ``count`` parameters."""
        timing = self._timing
        cycle_us = self._cycle_us
        fwd = self.fin_fwd_us
        while len(fwd) < count:
            fwd.append(timing.finish_param_forward_offset_cycles(len(fwd)) * cycle_us)
        inp = self.fin_input_us
        while len(inp) <= count:
            inp.append(timing.finish_input_cycles(len(inp)) * cycle_us)


@lru_cache(maxsize=None)
def shared_offset_tables(
    timing: Union[NexusPlusPlusTiming, NexusSharpTiming], cycle_us: float
) -> OffsetTables:
    """The process-shared :class:`OffsetTables` for ``(timing, cycle_us)``."""
    return OffsetTables(timing, cycle_us)
