"""The chaos-soak acceptance test.

A 2000-cell sweep across two socket workers under the seeded ``soak``
fault plan — frame drops, duplicates, corruption, store damage, one
guaranteed worker SIGKILL (seed 2015 makes ``local-0`` crash-eligible
at epoch 0) and stragglers — must produce JSONL byte-identical to the
serial runner, inside a hard wall-clock deadline, with no hung frames.
"""

from __future__ import annotations

import time

from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec

#: Hard deadline for the whole chaotic sweep (seconds).  The fault-free
#: run takes ~2 s; this bounds every retry/backoff/respawn path.
SOAK_DEADLINE_S = 300.0


def soak_spec():
    return SweepSpec(
        workloads=["microbench"],
        managers=["ideal", "nanos"],
        core_counts=[1, 2, 4, 8],
        seeds=tuple(range(250)),  # 2 * 4 * 250 = 2000 cells
        scale=0.01,
    )


class TestChaosSoak:
    def test_soak_sweep_is_byte_identical_to_serial(self, tmp_path):
        spec = soak_spec()
        total = spec.num_points()
        assert total == 2000

        serial = SweepRunner().run(spec, jsonl_path=tmp_path / "serial.jsonl")
        assert serial.executed == total

        runner = SweepRunner(
            transport="sockets",
            workers=2,
            cache_dir=tmp_path / "store",
            chaos="soak:2015",
        )
        started = time.monotonic()
        chaotic = runner.run(spec, jsonl_path=tmp_path / "chaos.jsonl")
        elapsed = time.monotonic() - started
        assert elapsed < SOAK_DEADLINE_S

        # Byte identity is the whole point: chaos may change timing and
        # work placement, never results.
        assert (tmp_path / "chaos.jsonl").read_bytes() == \
            (tmp_path / "serial.jsonl").read_bytes()
        assert chaotic.executed + chaotic.cache_hits == total

        scheduler = runner.last_scheduler
        assert scheduler is not None
        assert scheduler.results_received == total
        # Seed 2015 makes local-0 crash-eligible at epoch 0: exactly the
        # "one worker SIGKILL mid-sweep" scenario.  The scheduler must
        # have seen the death and respawned the slot.
        kinds = [event["event"] for event in scheduler.events]
        assert "respawn" in kinds
        # The sweep survived without quarantining the whole pool.
        assert len(scheduler.quarantine.quarantined) < 2

    def test_same_seed_drives_the_same_worker_fault_schedule(self):
        """Spot-check of the soak gate's determinism clause at the plan
        level: the exact fault decisions the two sweep workers draw are
        a pure function of the seed (full sweep determinism is implied —
        byte-identity above holds for any one schedule)."""
        from repro.chaos.plan import FaultPlan

        def schedule():
            plan = FaultPlan(2015, "soak")
            return [
                (scope, index, plan.decide_frame(scope, index),
                 plan.decide_cell(f"cells:{wid}:e0", index))
                for wid in ("local-0", "local-1")
                for scope in (f"worker:{wid}:e0",)
                for index in range(2000)
            ]

        first, second = schedule(), schedule()
        assert first == second
        fired = {frame for _, _, frame, _ in first if frame}
        assert "drop" in fired and "corrupt" in fired
        assert any(cell == "crash" for _, _, _, cell in first)
