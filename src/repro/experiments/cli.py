"""Command-line entry point for experiment sweeps.

Examples::

    python -m repro.experiments.cli sweep \\
        --workloads c-ray sparselu --managers ideal nanos "nexus#6" \\
        --cores 1 4 16 64 --scale 0.05 --seeds 2015 \\
        --n-jobs 4 --cache-dir .sweep-cache --output results.jsonl

    python -m repro.experiments.cli sweep \\
        --workloads sparselu --managers ideal nanos --cores 1 4 16 \\
        --workers 4 --cache-dir .sweep-cache --output results.jsonl

    python -m repro.experiments.cli spec-hash --workloads microbench \\
        --managers ideal --cores 1 2

    python -m repro.experiments.cli report results.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.common.profiling import maybe_profile
from repro.experiments.runner import SweepRunner, rows_to_studies
from repro.experiments.spec import SweepSpec
from repro.trace.serialization import iter_jsonl
from repro.workloads.registry import list_workloads


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workloads", nargs="+", required=True,
                        help="registry workload names (see `workloads` subcommand)")
    parser.add_argument("--managers", nargs="+", required=True,
                        help="manager specs: ideal, nanos, sw400, nexus++, nexus#<n>[@MHz]")
    parser.add_argument("--cores", type=int, nargs="+", required=True,
                        help="worker-core counts to sweep")
    parser.add_argument("--seeds", type=int, nargs="*", default=None,
                        help="workload seeds (default: generator defaults)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--nanos-max-cores", type=int, default=None,
                        help="cap the Nanos manager at this many cores")
    parser.add_argument("--schedulers", nargs="+", default=None,
                        help="ready-task dispatch policies to sweep: "
                             "fifo (default), sjf, ljf, locality")
    parser.add_argument("--topologies", nargs="+", default=None,
                        help="core topologies to sweep: homogeneous (default), "
                             "biglittle[:little_speed | :big_fraction:little_speed], "
                             "speeds:<s0>,<s1>,...")
    parser.add_argument("--stream", action="store_true",
                        help="replay grid cells through the streaming machine "
                             "path (bounded memory; identical schedules, no "
                             "per-task times in the results)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="bound every workload to its first N task "
                             "submissions (trace-size scaling axis)")
    parser.add_argument("--dynamic", action="store_true",
                        help="replay grid cells through the dynamic engine "
                             "(tasks spawn tasks at runtime; requires dynamic "
                             "workloads: fib, nqueens, recursive-sort, strassen)")
    parser.add_argument("--depths", type=int, nargs="+", default=None,
                        help="recursion depths to sweep for dynamic workloads "
                             "(fib's n, nqueens' board size, ...)")


def _spec_from_args(args: argparse.Namespace) -> SweepSpec:
    seeds: Sequence[Optional[int]] = tuple(args.seeds) if args.seeds else (None,)
    max_cores = {"Nanos": args.nanos_max_cores} if args.nanos_max_cores else None
    return SweepSpec(
        workloads=args.workloads,
        managers=args.managers,
        core_counts=args.cores,
        seeds=seeds,
        scale=args.scale,
        max_cores=max_cores,
        schedulers=tuple(args.schedulers) if args.schedulers else ("fifo",),
        topologies=tuple(args.topologies) if args.topologies else ("homogeneous",),
        stream=args.stream,
        max_tasks=args.max_tasks,
        dynamic=args.dynamic,
        depths=tuple(args.depths) if args.depths else (None,),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Declarative (workload x manager x cores x seed) experiment sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sweep = sub.add_parser("sweep", help="run a sweep grid")
    _add_grid_arguments(p_sweep)
    p_sweep.add_argument("--n-jobs", default="1", metavar="N|auto",
                         help="multiprocessing worker processes (default 1 = "
                              "serial; 'auto' = os.cpu_count())")
    p_sweep.add_argument("--workers", default=None, metavar="N|auto",
                         help="run the distributed sweep fabric instead: spawn "
                              "this many local socket workers pulling "
                              "locality-aware chunks from a central scheduler "
                              "('auto' = os.cpu_count(); see "
                              "python -m repro.distributed.worker for remote "
                              "workers)")
    p_sweep.add_argument("--worker-hosts", nargs="+", default=None,
                         metavar="HOST",
                         help="remote hosts expected to contribute one worker "
                              "each (start them by hand with: python -m "
                              "repro.distributed.worker --connect HOST:PORT); "
                              "implies the sockets transport")
    p_sweep.add_argument("--scheduler-bind", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="address the fabric scheduler listens on "
                              "(default 127.0.0.1:0 = loopback, ephemeral "
                              "port; bind a routable address for remote "
                              "workers)")
    p_sweep.add_argument("--batch-lanes", type=int, default=1,
                         help="serial-path lane batching: advance up to this "
                              "many grid cells in lockstep through the "
                              "vectorized batch backend (default 1 = scalar; "
                              "results are byte-identical either way; ignored "
                              "with --n-jobs > 1)")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="content-addressed result cache directory")
    p_sweep.add_argument("--chaos-seed", type=int, default=None, metavar="SEED",
                         help="arm deterministic fault injection on the "
                              "distributed fabric with this seed (same seed = "
                              "same fault sequence; results must stay "
                              "byte-identical; implies --chaos-profile soak "
                              "unless given)")
    p_sweep.add_argument("--chaos-profile", default=None, metavar="NAME",
                         help="fault profile for --chaos-seed (one of: none, "
                              "soak, wire, store, workers; default soak); the "
                              "REPRO_CHAOS env var (profile:seed) is an "
                              "equivalent knob for CI")
    p_sweep.add_argument("--output", default=None,
                         help="stream result rows to this JSONL file")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress the rendered speedup tables")
    p_sweep.add_argument("--profile", action="store_true",
                         help="wrap the sweep in cProfile and print the top 25 "
                              "cumulative entries to stderr (profile serially: "
                              "--n-jobs > 1 runs cells in worker processes the "
                              "profiler cannot see)")

    p_hash = sub.add_parser("spec-hash", help="print the content hash of a sweep grid")
    _add_grid_arguments(p_hash)

    p_report = sub.add_parser("report", help="render speedup tables from a sweep JSONL file")
    p_report.add_argument("jsonl", help="path to a file written by `sweep --output`")

    sub.add_parser("workloads", help="list available workload names")
    return parser


def _render_report(jsonl_path: str) -> str:
    """Rebuild per-workload speedup tables from a sweep JSONL stream."""
    studies = rows_to_studies(list(iter_jsonl(jsonl_path)))
    return "\n\n".join(study.render() for study in studies.values())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "workloads":
        print("\n".join(list_workloads()))
        return 0
    if args.command == "report":
        print(_render_report(args.jsonl))
        return 0
    spec = _spec_from_args(args)
    if args.command == "spec-hash":
        print(spec.spec_hash())
        return 0
    # command == "sweep"
    worker_hosts = tuple(args.worker_hosts) if args.worker_hosts else ()
    distributed = args.workers is not None or worker_hosts
    chaos = None
    if args.chaos_seed is not None or args.chaos_profile is not None:
        if not distributed:
            print("error: --chaos-seed/--chaos-profile need the distributed "
                  "fabric (--workers or --worker-hosts)", file=sys.stderr)
            return 2
        chaos = f"{args.chaos_profile or 'soak'}:{args.chaos_seed or 0}"
    runner = SweepRunner(
        n_jobs=args.n_jobs,
        cache_dir=args.cache_dir,
        batch_lanes=args.batch_lanes,
        transport="sockets" if distributed else "local",
        workers=args.workers,
        worker_hosts=worker_hosts,
        scheduler_bind=args.scheduler_bind,
        chaos=chaos,
    )
    with maybe_profile(args.profile):
        outcome = runner.run(spec, jsonl_path=args.output)
    if not args.quiet:
        for study in outcome.studies().values():
            print(study.render())
            print()
    print(
        f"sweep {spec.spec_hash()[:12]}: {len(outcome.points)} points, "
        f"{outcome.executed} executed, {outcome.cache_hits} cached"
        + (f", rows -> {outcome.jsonl_path}" if outcome.jsonl_path else "")
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
