"""Process-level fault hooks: worker crashes/stragglers/hangs, serve errors.

:class:`WorkerChaos` sits in the socket worker's execution loop and is
consulted once per cell *before* execution:

* **crash** — ``os._exit(137)``: the SIGKILL-equivalent.  No goodbye
  frame, no flushed buffers, no atexit; the scheduler learns of the
  death from the socket EOF or the heartbeat timeout and must requeue
  the worker's in-flight cells.
* **straggle** — sleep ×k before executing, making this worker the
  slow tail; speculative duplicate dispatch should re-issue its cells
  elsewhere (first result wins).
* **hang** — the nastiest failure: the worker goes *silent* without
  closing its socket (stops heartbeats, sends nothing, reads nothing).
  Only the scheduler's heartbeat timeout can detect this; once the
  scheduler gives up and closes the connection, the hook notices the
  EOF and exits so test runs never leak a wedged subprocess.

:class:`ServeChaos` is the serving-side hook: a deterministic engine
exception on the Kth admitted request, exercising the batcher's
failure path (shared fate of a batch, circuit breaking, client retry).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional

from repro.chaos.plan import FaultPlan
from repro.common.errors import SimulationError
from repro.distributed.protocol import FrameStream, ProtocolError


class WorkerChaos:
    """Per-cell fault hook for one socket worker process.

    ``scope`` must be unique per (worker identity, connection epoch) —
    the scheduler bumps the epoch on every respawn so a crashed worker's
    replacement draws a *fresh* fault stream instead of replaying the
    same crash forever.
    """

    def __init__(self, plan: FaultPlan, scope: str) -> None:
        self.plan = plan
        self.scope = scope
        self._cells = 0
        self.injected: Dict[str, int] = {}

    def before_cell(self, stream: Optional[FrameStream] = None,
                    on_hang: Optional[Callable[[], None]] = None) -> None:
        """Consult the plan before executing the next cell."""
        index = self._cells
        self._cells += 1
        fault = self.plan.decide_cell(self.scope, index)
        if fault is None:
            return
        self.injected[fault] = self.injected.get(fault, 0) + 1
        if fault == "crash":
            os._exit(137)
        elif fault == "straggle":
            time.sleep(self.plan.profile.straggle_s)
        elif fault == "hang":
            if on_hang is not None:
                on_hang()  # stop heartbeats: a hung process sends nothing
            self._hang_until_disconnected(stream)

    @staticmethod
    def _hang_until_disconnected(stream: Optional[FrameStream]) -> None:
        """Sit silent until the scheduler gives up on us, then die."""
        while True:
            if stream is not None:
                try:
                    stream.poll()
                except (OSError, ProtocolError):
                    os._exit(1)
                if stream.eof:
                    os._exit(1)
            time.sleep(0.05)


class ServeChaos:
    """Deterministic engine failures for the serving layer."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._requests = 0
        self.injected = 0

    def maybe_fail(self) -> None:
        """Raise a simulated engine failure when the plan says so.

        Called once per admitted request, before dispatch; the raised
        :class:`SimulationError` follows the exact path a real engine
        bug would take through the batcher and out to the client.
        """
        index = self._requests
        self._requests += 1
        if self.plan.decide_serve(index):
            self.injected += 1
            raise SimulationError(
                f"chaos: injected engine failure on request {index}")
