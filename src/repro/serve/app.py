"""The asyncio HTTP/JSON server of the serving layer.

Pure-stdlib HTTP/1.1 on :func:`asyncio.start_server` — the container
ships no web framework, and the protocol surface we need (JSON bodies,
keep-alive, chunked transfer both ways) is small enough to own.  The
endpoints:

====== =================== ===================================================
Method Path                Semantics
====== =================== ===================================================
GET    ``/healthz``        liveness + queue depth
GET    ``/v1/stats``       serving counters (cache hits, coalesced, 429s, ...)
GET    ``/v1/workloads``   registered workload names
POST   ``/v1/traces``      upload a trace (document JSON or chunked JSONL);
                           returns its content-addressed ``trace_id``
POST   ``/v1/simulate``    one grid cell -> result document (+ makespan)
POST   ``/v1/sweep``       a full grid -> chunked-JSONL rows or a report
====== =================== ===================================================

Every simulation funnels through the :class:`~repro.serve.batcher.
Batcher` (cache -> dedupe -> admission -> lane batches), so the serving
layer inherits the sweep runner's content addressing: a cell served over
HTTP, by the CLI, or by a direct :class:`~repro.experiments.runner.
SweepRunner` produces the same cache key and byte-identical JSONL rows.
Saturation answers ``429`` with a measured ``Retry-After``; failure
semantics are tabulated in ``docs/serving.md``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.analysis.factories import parse_manager
from repro.common.errors import ConfigurationError, SimulationError, TraceError
from repro.experiments.cache import ResultCache
from repro.experiments.spec import RunPoint, SweepSpec, WorkloadSpec
from repro.serve.admission import Saturated
from repro.serve.batcher import Batcher
from repro.system.scheduling import canonical_policy_name
from repro.system.topology import canonical_topology
from repro.trace.serialization import (
    canonical_json_line,
    trace_digest,
    trace_from_json,
    trace_from_stream_text,
)

__all__ = ["HttpError", "Request", "ServeConfig", "Server", "ServerHandle",
           "start_in_thread"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: asyncio stream buffer limit — bounds header size and chunk-size lines.
_STREAM_LIMIT = 256 * 1024


class HttpError(Exception):
    """A request error with an HTTP status (rendered as a JSON body)."""

    def __init__(self, status: int, message: str,
                 headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Dict[str, Any]:
        try:
            document = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise HttpError(400, "request body must be a JSON object")
        return document


@dataclass
class ServeConfig:
    """Knobs of one serving deployment (see ``docs/serving.md``)."""

    host: str = "127.0.0.1"
    port: int = 0
    cache_dir: Optional[str] = None
    #: Cells advanced in lockstep per executor block.
    batch_lanes: int = 8
    #: Seconds a partial block waits to fill before running anyway.
    batch_window: float = 0.002
    #: Bounded-queue depth: admitted-but-unfinished cells past which the
    #: server answers 429 + Retry-After.
    max_pending: int = 256
    #: Simulation threads (overlap simulation with request I/O).
    executor_threads: int = 2
    #: > 0 routes large blocks through the distributed sweep fabric.
    fabric_workers: int = 0
    fabric_min_cells: Optional[int] = None
    #: Reject request bodies (after de-chunking) larger than this.
    max_body_bytes: int = 64 * 1024 * 1024
    #: Uploaded traces kept in memory (LRU beyond this).
    max_traces: int = 64
    #: Deterministic fault injection, compact form ``"profile:seed"``
    #: (e.g. ``"soak:2015"``); ``None`` also consults ``REPRO_CHAOS``.
    chaos: Optional[str] = None


# -- request plumbing --------------------------------------------------------
async def _read_request(reader: asyncio.StreamReader, max_body: int) -> Optional[Request]:
    """Parse one request off the connection; ``None`` on clean EOF."""
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request head too large") from exc
    head = raw.decode("latin-1").split("\r\n")
    parts = head[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {head[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in head[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if headers.get("transfer-encoding", "").lower() == "chunked":
        chunks: List[bytes] = []
        total = 0
        while True:
            size_line = await reader.readuntil(b"\r\n")
            try:
                size = int(size_line.split(b";", 1)[0].strip(), 16)
            except ValueError as exc:
                raise HttpError(400, "malformed chunk size") from exc
            if size == 0:
                await reader.readuntil(b"\r\n")  # trailer terminator
                break
            total += size
            if total > max_body:
                raise HttpError(413, f"request body exceeds {max_body} bytes")
            chunk = await reader.readexactly(size)
            await reader.readexactly(2)  # trailing CRLF
            chunks.append(chunk)
        body = b"".join(chunks)
    elif "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length > max_body:
            raise HttpError(413, f"request body exceeds {max_body} bytes")
        body = await reader.readexactly(length)
    return Request(method=method.upper(), path=split.path, query=split.query,
                   headers=headers, body=body)


def _render_head(status: int, headers: List[Tuple[str, str]]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _send_json(
    writer: asyncio.StreamWriter,
    status: int,
    document: Any,
    *,
    keep_alive: bool,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> None:
    body = (canonical_json_line(document) + "\n").encode("utf-8")
    headers = [
        ("Content-Type", "application/json"),
        ("Content-Length", str(len(body))),
        ("Connection", "keep-alive" if keep_alive else "close"),
        *extra_headers,
    ]
    writer.write(_render_head(status, headers) + body)
    await writer.drain()


class _ChunkedWriter:
    """Chunked-transfer response body (the JSONL streaming path)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer

    async def start(self, *, keep_alive: bool,
                    content_type: str = "application/jsonl") -> None:
        self._writer.write(_render_head(200, [
            ("Content-Type", content_type),
            ("Transfer-Encoding", "chunked"),
            ("Connection", "keep-alive" if keep_alive else "close"),
        ]))
        await self._writer.drain()

    async def send(self, payload: bytes) -> None:
        if not payload:
            return
        self._writer.write(b"%x\r\n" % len(payload) + payload + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


# -- the server --------------------------------------------------------------
class Server:
    """One serving deployment: HTTP front end + batcher + trace store."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache = (ResultCache(self.config.cache_dir)
                      if self.config.cache_dir else None)
        self.batcher: Optional[Batcher] = None
        self.address: Optional[Tuple[str, int]] = None
        #: Uploaded traces, content-addressed by ``trace_digest`` (LRU).
        self.traces: "OrderedDict[str, WorkloadSpec]" = OrderedDict()
        self.streams_aborted = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        config = self.config
        from repro.chaos.plan import parse_chaos, plan_from_env

        plan = parse_chaos(config.chaos) if config.chaos else plan_from_env()
        self.batcher = Batcher(
            cache=self.cache,
            batch_lanes=config.batch_lanes,
            batch_window=config.batch_window,
            max_pending=config.max_pending,
            executor_threads=config.executor_threads,
            fabric_workers=config.fabric_workers,
            fabric_min_cells=config.fabric_min_cells,
            chaos=plan,
        )
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port, limit=_STREAM_LIMIT)
        self.address = self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Tear down idle keep-alive connections (and any still streaming)
        # so the event loop drains before it is closed.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.batcher is not None:
            await self.batcher.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection loop ---------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader, self.config.max_body_bytes)
                except HttpError as err:
                    await _send_json(writer, err.status, {"error": str(err)},
                                     keep_alive=False, extra_headers=err.headers)
                    break
                if request is None:
                    break
                keep_alive = request.headers.get("connection", "").lower() != "close"
                started_stream = await self._dispatch(request, writer, keep_alive)
                if started_stream is None or not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            self.streams_aborted += 1
        except asyncio.CancelledError:
            pass  # server shutdown
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> Optional[bool]:
        """Route one request.  Returns ``None`` when the connection must
        close (a streamed response that cannot delimit an error)."""
        try:
            return await self._route(request, writer, keep_alive)
        except Saturated as err:
            retry = max(1, int(round(err.retry_after)))
            await _send_json(
                writer, 429,
                {"error": str(err), "retry_after_s": retry,
                 "pending": err.pending, "max_pending": err.max_pending},
                keep_alive=keep_alive, extra_headers=(("Retry-After", str(retry)),))
        except HttpError as err:
            await _send_json(writer, err.status, {"error": str(err)},
                             keep_alive=keep_alive, extra_headers=err.headers)
        except (ConfigurationError, TraceError) as err:
            await _send_json(writer, 400, {"error": str(err)}, keep_alive=keep_alive)
        except (ConnectionResetError, BrokenPipeError):
            raise  # client went away: surface to the connection loop
        except Exception as err:  # simulation/internal failure: clean 5xx
            await _send_json(
                writer, 500,
                {"error": f"{type(err).__name__}: {err}"}, keep_alive=keep_alive)
        return True

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> Optional[bool]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            await _send_json(writer, 200, self._health(), keep_alive=keep_alive)
        elif path == "/v1/stats" and method == "GET":
            await _send_json(writer, 200, self._stats(), keep_alive=keep_alive)
        elif path == "/v1/workloads" and method == "GET":
            from repro.workloads.registry import list_workloads

            await _send_json(writer, 200, {"workloads": list_workloads()},
                             keep_alive=keep_alive)
        elif path == "/v1/traces" and method == "POST":
            await _send_json(writer, 200, self._upload_trace(request),
                             keep_alive=keep_alive)
        elif path == "/v1/simulate" and method == "POST":
            await self._simulate(request, writer, keep_alive)
        elif path == "/v1/sweep" and method == "POST":
            return await self._sweep(request, writer, keep_alive)
        elif path in ("/healthz", "/v1/stats", "/v1/workloads", "/v1/traces",
                      "/v1/simulate", "/v1/sweep"):
            raise HttpError(405, f"{method} not allowed on {path}",
                            headers=(("Allow", "GET, POST"),))
        else:
            raise HttpError(404, f"no such endpoint {path!r}")
        return True

    # -- endpoint bodies ---------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        assert self.batcher is not None
        admission = self.batcher.admission
        return {
            "status": "ok",
            "pending": admission.pending,
            "max_pending": admission.max_pending,
        }

    def _stats(self) -> Dict[str, Any]:
        assert self.batcher is not None
        admission = self.batcher.admission
        doc = self.batcher.stats.to_json()
        doc.update({
            "pending": admission.pending,
            "max_pending": admission.max_pending,
            "rejected_requests": admission.rejected,
            "service_rate_cells_per_s": admission.service_rate,
            "traces_registered": len(self.traces),
            "streams_aborted": self.streams_aborted,
            "breaker": self.batcher.breaker.to_json(),
        })
        return doc

    def _upload_trace(self, request: Request) -> Dict[str, Any]:
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HttpError(400, f"trace body is not UTF-8: {exc}") from exc
        if not text.strip():
            raise HttpError(400, "empty trace body")
        first_line = text.split("\n", 1)[0]
        try:
            head = json.loads(first_line)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"trace body is not JSON: {exc}") from exc
        if isinstance(head, dict) and head.get("kind") == "trace-stream":
            trace = trace_from_stream_text(text, source="<upload>")
        else:
            document = json.loads(text)
            if not isinstance(document, dict):
                raise HttpError(400, "trace document must be a JSON object")
            trace = trace_from_json(document)
        trace_id = trace_digest(trace)
        if trace_id not in self.traces:
            self.traces[trace_id] = WorkloadSpec.of(trace)
            while len(self.traces) > self.config.max_traces:
                self.traces.popitem(last=False)
        else:
            self.traces.move_to_end(trace_id)
        return {
            "trace_id": trace_id,
            "name": trace.name,
            "num_tasks": trace.num_tasks,
            "num_events": len(trace.events),
        }

    def _resolve_workload(self, entry: Any, *, scale: float,
                          max_tasks: Optional[int]) -> WorkloadSpec:
        """Turn a request workload reference into a :class:`WorkloadSpec`.

        Accepts a registry name, ``{"trace_id": ...}`` for an uploaded
        trace, or ``{"inline": <trace document>}``.
        """
        if isinstance(entry, str):
            from repro.workloads.registry import list_workloads

            if entry not in list_workloads():
                raise HttpError(
                    404, f"unknown workload {entry!r} (see GET /v1/workloads)")
            return WorkloadSpec.of(entry, scale=scale, max_tasks=max_tasks)
        if isinstance(entry, dict) and "trace_id" in entry:
            spec = self.traces.get(str(entry["trace_id"]))
            if spec is None:
                raise HttpError(
                    404, f"unknown trace_id {entry['trace_id']!r} "
                         "(upload it via POST /v1/traces)")
            return WorkloadSpec.of(spec, max_tasks=max_tasks)
        if isinstance(entry, dict) and "inline" in entry:
            if not isinstance(entry["inline"], dict):
                raise HttpError(400, "inline workload must be a trace document")
            return WorkloadSpec.of(trace_from_json(entry["inline"]),
                                   max_tasks=max_tasks)
        raise HttpError(
            400, "workload must be a registry name, {\"trace_id\": ...} or "
                 "{\"inline\": <trace document>}")

    def _point_from_request(self, doc: Dict[str, Any]) -> RunPoint:
        """Build the grid cell a ``/v1/simulate`` body describes.

        Constructed through the exact same :class:`WorkloadSpec` calls as
        :class:`SweepSpec`, so the cell's ``cache_key`` is identical to
        what a sweep over the same configuration would compute — that
        identity is what makes serving dedupe work across entry points.
        """
        for field in ("manager", "cores"):
            if field not in doc:
                raise HttpError(400, f"simulate request needs {field!r}")
        if "workload" not in doc:
            raise HttpError(400, "simulate request needs 'workload'")
        scale = float(doc.get("scale", 1.0))
        max_tasks = doc.get("max_tasks")
        max_tasks = None if max_tasks is None else int(max_tasks)
        seed = doc.get("seed")
        seed = None if seed is None else int(seed)
        depth = doc.get("depth")
        depth = None if depth is None else int(depth)
        cores = int(doc["cores"])
        if cores < 1:
            raise HttpError(400, f"cores must be >= 1, got {cores}")
        workload = self._resolve_workload(
            doc["workload"], scale=scale, max_tasks=max_tasks)
        workload = workload.with_seed(seed).with_depth(depth)
        dynamic = bool(doc.get("dynamic", False))
        if dynamic and not workload.is_dynamic:
            raise HttpError(400, f"workload {workload.name!r} is not dynamic")
        manager_name, factory = parse_manager(str(doc["manager"]))
        return RunPoint(
            workload=workload,
            manager_name=manager_name,
            factory=factory,
            cores=cores,
            validate=bool(doc.get("validate", False)),
            keep_schedule=bool(doc.get("keep_schedule", False)),
            scheduler=canonical_policy_name(str(doc.get("scheduler", "fifo"))),
            topology=canonical_topology(str(doc.get("topology", "homogeneous"))),
            stream=bool(doc.get("stream", False)),
            dynamic=dynamic,
        )

    def _spec_from_request(self, doc: Dict[str, Any]) -> SweepSpec:
        """Build the :class:`SweepSpec` a ``/v1/sweep`` body describes."""
        for field in ("workloads", "managers"):
            if not doc.get(field):
                raise HttpError(400, f"sweep request needs a non-empty {field!r}")
        core_counts = doc.get("core_counts") or doc.get("cores")
        if not core_counts:
            raise HttpError(400, "sweep request needs a non-empty 'core_counts'")
        scale = float(doc.get("scale", 1.0))
        max_tasks = doc.get("max_tasks")
        max_tasks = None if max_tasks is None else int(max_tasks)
        workloads = [
            self._resolve_workload(entry, scale=scale, max_tasks=None)
            for entry in doc["workloads"]
        ]
        seeds = tuple(doc.get("seeds") or (None,))
        depths = tuple(doc.get("depths") or (None,))
        return SweepSpec(
            workloads=workloads,
            managers=[str(m) for m in doc["managers"]],
            core_counts=[int(c) for c in core_counts],
            seeds=seeds,
            scale=scale,
            max_cores=doc.get("max_cores"),
            validate=bool(doc.get("validate", False)),
            keep_schedule=bool(doc.get("keep_schedule", False)),
            schedulers=tuple(doc.get("schedulers") or ("fifo",)),
            topologies=tuple(doc.get("topologies") or ("homogeneous",)),
            stream=bool(doc.get("stream", False)),
            max_tasks=max_tasks,
            dynamic=bool(doc.get("dynamic", False)),
            depths=depths,
            name=str(doc.get("name", "sweep")),
        )

    async def _simulate(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        assert self.batcher is not None
        point = self._point_from_request(request.json())
        key = point.cache_key() if point.cacheable else None
        [future] = self.batcher.submit_many([point])
        cached = future.done()
        document = await asyncio.shield(future)
        await _send_json(writer, 200, {
            "cache_key": key,
            "cached": cached,
            "makespan_us": document.get("makespan_us"),
            "result": document,
        }, keep_alive=keep_alive)

    async def _sweep(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> Optional[bool]:
        assert self.batcher is not None
        doc = request.json()
        fmt = str(doc.get("format", "jsonl"))
        if fmt not in ("jsonl", "report"):
            raise HttpError(400, f"format must be 'jsonl' or 'report', got {fmt!r}")
        spec = self._spec_from_request(doc)
        points = list(spec.points())
        futures = self.batcher.submit_many(points)

        if fmt == "report":
            documents = await asyncio.gather(
                *(asyncio.shield(future) for future in futures))
            rows = [
                {"point": point.describe(), "result": document}
                for point, document in zip(points, documents)
            ]
            from repro.experiments.runner import rows_to_studies

            tables = [study.render()
                      for study in rows_to_studies(rows).values()]
            await _send_json(writer, 200, {
                "spec_hash": spec.spec_hash(),
                "num_points": len(points),
                "tables": tables,
            }, keep_alive=keep_alive)
            return True

        # JSONL: stream rows in grid order as they resolve, byte-identical
        # to `SweepRunner.run(...).jsonl_lines()`.  Once the first chunk is
        # out, an error can only truncate the stream (no terminal chunk),
        # which clients detect — so the connection closes afterwards
        # instead of risking a desynchronised keep-alive.
        chunked = _ChunkedWriter(writer)
        await chunked.start(keep_alive=False)
        try:
            for point, future in zip(points, futures):
                document = await asyncio.shield(future)
                row = {"point": point.describe(), "result": document}
                await chunked.send((canonical_json_line(row) + "\n").encode("utf-8"))
            await chunked.finish()
        except (ConnectionResetError, BrokenPipeError):
            # The client went away mid-stream; simulations already in
            # flight finish (coalesced requests may share them) and the
            # connection is simply torn down.
            self.streams_aborted += 1
        except Exception:
            # A simulation failed mid-body: we cannot switch to an error
            # response, so truncate (no terminal chunk) — the client
            # reports an incomplete read instead of hanging.
            self.streams_aborted += 1
        return None


# -- thread-hosted server (tests, benchmarks, notebooks) ---------------------
class ServerHandle:
    """A server running its own event loop on a daemon thread."""

    def __init__(self) -> None:
        self.server: Optional[Server] = None
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        assert self.address is not None
        return self.address[0]

    @property
    def port(self) -> int:
        assert self.address is not None
        return self.address[1]

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._loop is not None and self._stop is not None \
                and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)


def start_in_thread(config: Optional[ServeConfig] = None,
                    *, startup_timeout: float = 30.0) -> ServerHandle:
    """Start a :class:`Server` on a dedicated event-loop thread.

    The in-process deployment used by the tests and the serving
    benchmark; ``python -m repro.serve`` runs the same server on the
    main thread instead.
    """
    handle = ServerHandle()
    started = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        handle._loop = loop

        async def main() -> None:
            server = Server(config)
            handle._stop = asyncio.Event()
            try:
                await server.start()
            except BaseException as exc:  # port in use, bad config, ...
                handle._error = exc
                started.set()
                return
            handle.server = server
            handle.address = server.address
            started.set()
            try:
                await handle._stop.wait()
            finally:
                await server.stop()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    handle._thread = thread
    thread.start()
    if not started.wait(timeout=startup_timeout):
        raise SimulationError("serve thread failed to start in time")
    if handle._error is not None:
        thread.join(timeout=5)
        raise SimulationError(
            f"serve startup failed: {handle._error}") from handle._error
    return handle
