"""The event-driven multicore machine simulator.

The machine reproduces the paper's testbench loop (Section V-B):

    "It submits new tasks to Nexus#, receives ready task information from
    it, schedules ready tasks to worker cores and simulates their
    execution, and finally notifies Nexus# of finished tasks."

The master thread walks the trace: every task submission goes to the
manager (whose ``accept_time`` throttles the submission rate — IO
back-pressure for the hardware managers, software creation cost for
Nanos), every ``taskwait`` blocks until all outstanding tasks finish, and
every ``taskwait on`` blocks until the last writer of the given address
finishes — unless the manager does not support the pragma (Nexus++), in
which case it degrades to a full ``taskwait`` exactly as the paper
describes.

The runtime is layered:

* the event loop runs on the shared :class:`repro.sim.engine.Simulator`
  kernel (one event per submission step, ready notification and task
  completion, with completions processed first at equal timestamps);
* ready-task dispatch is delegated to a pluggable
  :class:`repro.system.scheduling.SchedulerPolicy` (FIFO by default,
  reproducing the paper's "free worker cores start executing tasks
  directly after they are reported as ready");
* worker cores live in a :class:`repro.system.topology.CorePool` built
  from a :class:`~repro.system.topology.CoreTopology`, so heterogeneous
  (e.g. big.LITTLE) machines are one config knob away — a task occupying
  a core of speed ``s`` holds it for ``(overhead + duration) / s``;
* per-task times land in a struct-of-arrays
  :class:`repro.system.timeline.TaskTimeline` (preallocated, indexed by
  task id), and each trace is compiled once into flat op/operand arrays
  that are cached on the trace object, so replaying the same trace across
  managers, core counts and policies skips all per-event type dispatch.

With the default configuration (FIFO policy, homogeneous unit-speed
topology) the schedule — and therefore every golden-trace makespan — is
bit-identical to the pre-refactor monolithic loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.validation import check_positive
from repro.managers.base import TaskManagerModel
from repro.sim.engine import Simulator
from repro.system.results import MachineResult
from repro.system.scheduling import PolicyLike, SchedulerPolicy, make_policy
from repro.system.timeline import TaskTimeline
from repro.system.topology import CorePool, CoreTopology, TopologyLike, resolve_topology
from repro.trace.dag import validate_schedule
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent
from repro.trace.task import TaskDescriptor
from repro.trace.trace import Trace

# Event kinds, ordered by processing priority at equal timestamps: task
# completions first (they free cores and resolve barriers), then ready
# notifications, then master progress.
_PRIORITY_DONE = 0
_PRIORITY_READY = 1
_PRIORITY_MASTER = 2

_KIND_DONE = "task-done"
_KIND_READY = "task-ready"
_KIND_MASTER = "master-step"

# Compiled trace op codes.
_OP_SUBMIT = 0
_OP_WAIT = 1
_OP_WAIT_ON = 2

#: Attribute name under which a trace caches its compiled form.
_COMPILED_ATTR = "_compiled_machine_program"


class _CompiledTrace:
    """Flat, type-dispatch-free representation of a trace's event list.

    One entry per trace event: an op code plus preresolved operands (the
    descriptor, the precomputed written-address tuple, the ``taskwait
    on`` address).  Compiling once per trace removes the per-event
    ``isinstance`` chain and the per-parameter direction checks from the
    master loop; the compiled form is cached on the trace object, so
    sweeps replaying one trace across many grid cells compile it once.
    """

    __slots__ = ("ops", "tasks", "write_addrs", "wait_addrs", "num_tasks",
                 "task_ids", "slot_of", "task_by_slot")

    def __init__(self, trace: Trace) -> None:
        events = trace.events
        count = len(events)
        self.ops: List[int] = [0] * count
        self.tasks: List[Optional[TaskDescriptor]] = [None] * count
        self.write_addrs: List[Tuple[int, ...]] = [()] * count
        self.wait_addrs: List[int] = [0] * count
        task_ids: List[int] = []
        task_by_slot: List[TaskDescriptor] = []
        for index, event in enumerate(events):
            if isinstance(event, TaskSubmitEvent):
                task = event.task
                self.ops[index] = _OP_SUBMIT
                self.tasks[index] = task
                self.write_addrs[index] = task.output_addresses
                task_ids.append(task.task_id)
                task_by_slot.append(task)
            elif isinstance(event, TaskwaitEvent):
                self.ops[index] = _OP_WAIT
            elif isinstance(event, TaskwaitOnEvent):
                self.ops[index] = _OP_WAIT_ON
                self.wait_addrs[index] = event.address
            else:
                raise SimulationError(f"unknown trace event {event!r}")
        self.num_tasks = len(task_ids)
        self.task_ids = task_ids
        self.task_by_slot = task_by_slot
        # Dense ids (TraceBuilder's invariant) index arrays directly;
        # sparse ids (hand-extended traces) go through an explicit map.
        if task_ids == list(range(len(task_ids))):
            self.slot_of: Optional[Dict[int, int]] = None
        else:
            self.slot_of = {task_id: slot for slot, task_id in enumerate(task_ids)}


def _compile_trace(trace: Trace) -> _CompiledTrace:
    """Return the cached compiled form of ``trace`` (compile on first use)."""
    compiled = trace.__dict__.get(_COMPILED_ATTR)
    if compiled is None:
        compiled = _CompiledTrace(trace)
        # Trace is a frozen dataclass; the cache is invisible to equality,
        # hashing and (via Trace.__getstate__) pickling.
        object.__setattr__(trace, _COMPILED_ATTR, compiled)
    return compiled


@dataclass(frozen=True)
class MachineConfig:
    """Configuration of a machine simulation."""

    #: Number of worker cores executing tasks.
    num_cores: int
    #: When true, the resulting schedule is checked against the reference
    #: dependency DAG (slow for very large traces; used by tests).
    validate: bool = False
    #: When true, per-task schedule times are kept in the result.  When
    #: false the machine skips collecting them entirely (no per-task
    #: timeline is allocated), which saves memory on very large sweeps —
    #: unless ``validate`` forces collection.
    keep_schedule: bool = True
    #: Ready-task dispatch discipline: a policy name ("fifo", "sjf",
    #: "ljf", "locality") or a :class:`SchedulerPolicy` instance.
    scheduler: PolicyLike = "fifo"
    #: Worker-core topology: a spec string ("homogeneous",
    #: "biglittle:0.5", "speeds:1,1,0.5,0.5"), a
    #: :class:`~repro.system.topology.TopologySpec`, or a concrete
    #: :class:`~repro.system.topology.CoreTopology` (must match
    #: ``num_cores``).
    topology: TopologyLike = "homogeneous"

    def __post_init__(self) -> None:
        check_positive("num_cores", self.num_cores)


class Machine:
    """Simulates one trace on one manager over a configured core topology."""

    def __init__(self, manager: TaskManagerModel, config: MachineConfig) -> None:
        self.manager = manager
        self.config = config
        self.policy: SchedulerPolicy = make_policy(config.scheduler)
        self.topology: CoreTopology = resolve_topology(config.topology, config.num_cores)
        #: Events dispatched by the most recent :meth:`run` (throughput metric).
        self.last_events_processed = 0

    # -- public API -------------------------------------------------------------
    def run(self, trace: Trace) -> MachineResult:
        """Replay ``trace`` and return the resulting schedule and metrics."""
        manager = self.manager
        manager.reset()
        policy = self.policy
        policy.reset()
        pool = CorePool(self.topology)
        compiled = _compile_trace(trace)

        sim = Simulator()
        queue = sim.queue
        push = queue.push

        # --- state -------------------------------------------------------------
        ops = compiled.ops
        op_tasks = compiled.tasks
        op_write_addrs = compiled.write_addrs
        op_wait_addrs = compiled.wait_addrs
        num_events = len(ops)
        num_tasks = compiled.num_tasks
        slot_of = compiled.slot_of
        task_by_slot = compiled.task_by_slot

        event_index = 0
        master_time = 0.0
        master_blocked: Optional[Tuple[str, Optional[int]]] = None
        master_done = False
        outstanding = 0

        last_writer: Dict[int, int] = {}
        dispatched = bytearray(num_tasks)
        finished = bytearray(num_tasks)
        finished_count = 0
        core_busy_us = 0.0

        collect = self.config.keep_schedule or self.config.validate
        timeline = TaskTimeline(
            num_tasks,
            task_ids=None if slot_of is None else compiled.task_ids,
        ) if collect else None
        if timeline is not None:
            submit_arr = timeline.submit
            ready_arr = timeline.ready
            start_arr = timeline.start
            finish_arr = timeline.finish
            core_arr = timeline.core

        worker_overhead = manager.worker_overhead_us
        supports_taskwait_on = manager.supports_taskwait_on
        speeds = pool.speeds
        busy_us = pool.busy_us
        acquire = pool.acquire
        release = pool.release
        idle_ranks = pool.idle_ranks  # read-only emptiness view (hot path)
        wants_start_events = policy.wants_start_events
        enqueue = policy.enqueue
        select = policy.select
        policy_pending = policy.__len__
        manager_submit = manager.submit
        manager_finish = manager.finish

        # --- helpers -------------------------------------------------------------
        def start_task(task_id: int, slot: int, now: float) -> None:
            nonlocal core_busy_us
            task = task_by_slot[slot]
            core = acquire()
            nominal = worker_overhead + task.duration_us
            speed = speeds[core]
            duration = nominal if speed == 1.0 else nominal / speed
            end = now + duration
            core_busy_us += duration
            busy_us[core] += duration
            if collect:
                start_arr[slot] = now
                finish_arr[slot] = end
                core_arr[slot] = core
            if wants_start_events:
                policy.on_start(task_id, task, core, now)
            push(end, _KIND_DONE, (task_id, slot, core), _PRIORITY_DONE)

        def barrier_satisfied(now: float) -> bool:
            """Check (and clear) the master's barrier if it is resolved."""
            nonlocal master_blocked, master_time
            if master_blocked is None:
                return False
            kind, waited_task = master_blocked
            if kind == "all":
                if outstanding != 0:
                    return False
            else:
                assert waited_task is not None
                waited_slot = waited_task if slot_of is None else slot_of[waited_task]
                if not finished[waited_slot]:
                    return False
            master_blocked = None
            if now > master_time:
                master_time = now
            return True

        def advance_master(now: float) -> None:
            """Process trace events until a submission, a block, or the end."""
            nonlocal event_index, master_time, master_blocked, master_done, outstanding
            if now > master_time:
                master_time = now
            while event_index < num_events:
                op = ops[event_index]
                if op == _OP_SUBMIT:
                    task = op_tasks[event_index]
                    task_id = task.task_id
                    slot = task_id if slot_of is None else slot_of[task_id]
                    outstanding += 1
                    if collect:
                        submit_arr[slot] = master_time
                    for address in op_write_addrs[event_index]:
                        last_writer[address] = task_id
                    event_index += 1
                    outcome = manager_submit(task, master_time)
                    for notification in outcome.ready:
                        ready_id = notification.task_id
                        ready_time = notification.time_us
                        if collect:
                            ready_arr[ready_id if slot_of is None else slot_of[ready_id]] = ready_time
                        push(ready_time if ready_time > master_time else master_time,
                             _KIND_READY, ready_id, _PRIORITY_READY)
                    next_time = master_time + task.creation_overhead_us
                    if outcome.accept_time_us > next_time:
                        next_time = outcome.accept_time_us
                    if next_time < master_time:
                        raise SimulationError(
                            f"manager {manager.name} accepted task {task_id} in the past"
                        )
                    master_time = next_time
                    if event_index >= num_events:
                        master_done = True
                        return
                    pending = queue.next_time
                    if pending is not None and pending <= master_time:
                        push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)
                        return
                    # No pending event sorts before the next master step
                    # (equal-time completions/readies outrank the master's
                    # priority, so they only exist when the head is <=
                    # master_time): keep submitting inline instead of
                    # bouncing through the event queue.  Event order — and
                    # therefore the schedule — is provably unchanged.
                    continue
                if op == _OP_WAIT:
                    if outstanding == 0:
                        event_index += 1
                        continue
                    master_blocked = ("all", None)
                    return
                # op == _OP_WAIT_ON
                if not supports_taskwait_on:
                    # Nexus++-style degradation to a full taskwait
                    # (Section III of the paper).
                    if outstanding == 0:
                        event_index += 1
                        continue
                    master_blocked = ("all", None)
                    return
                writer = last_writer.get(op_wait_addrs[event_index])
                if writer is None or finished[writer if slot_of is None else slot_of[writer]]:
                    event_index += 1
                    continue
                master_blocked = ("task", writer)
                return
            master_done = True

        # --- event handlers ------------------------------------------------------
        def on_master(sim: Simulator, event) -> None:
            if master_blocked is None and not master_done:
                advance_master(event[0])

        def on_ready(sim: Simulator, event) -> None:
            task_id = event[4]
            slot = task_id if slot_of is None else slot_of[task_id]
            if dispatched[slot]:
                raise SimulationError(f"task {task_id} reported ready twice")
            dispatched[slot] = 1
            now = event[0]
            if idle_ranks:
                start_task(task_id, slot, now)
            else:
                enqueue(task_id, task_by_slot[slot], now)

        def on_done(sim: Simulator, event) -> None:
            nonlocal outstanding, finished_count
            task_id, slot, core = event[4]
            now = event[0]
            outstanding -= 1
            finished[slot] = 1
            finished_count += 1
            outcome = manager_finish(task_id, now)
            for notification in outcome.ready:
                ready_id = notification.task_id
                ready_time = notification.time_us
                if collect:
                    ready_arr[ready_id if slot_of is None else slot_of[ready_id]] = ready_time
                push(ready_time if ready_time > now else now,
                     _KIND_READY, ready_id, _PRIORITY_READY)
            # The freed core picks up the next queued ready task, if any.
            release(core)
            if policy_pending():
                next_task = select(core, now)
                if next_task is not None:
                    next_slot = next_task if slot_of is None else slot_of[next_task]
                    start_task(next_task, next_slot, now)
            # Barriers resolve on completions (cheap inline guard: the
            # master is usually not blocked).
            if master_blocked is not None and barrier_satisfied(now) and not master_done:
                push(master_time, _KIND_MASTER, None, _PRIORITY_MASTER)

        sim.on(_KIND_MASTER, on_master)
        sim.on(_KIND_READY, on_ready)
        sim.on(_KIND_DONE, on_done)

        # --- main loop ------------------------------------------------------------
        advance_master(0.0)
        sim.run()
        self.last_events_processed = sim.processed_events
        makespan = sim.now if sim.now > master_time else master_time

        # --- consistency checks -----------------------------------------------------
        if finished_count != num_tasks:
            missing = num_tasks - finished_count
            raise SimulationError(
                f"{manager.name} on {trace.name}: {missing} of {num_tasks} tasks never ran "
                "(deadlock or lost ready notification)"
            )
        if not master_done or master_blocked is not None:
            raise SimulationError(
                f"{manager.name} on {trace.name}: master thread did not reach the end of the trace"
            )

        if self.config.validate:
            assert timeline is not None
            validate_schedule(trace, timeline.start_dict(), timeline.finish_dict())

        keep = self.config.keep_schedule and timeline is not None
        return MachineResult(
            trace_name=trace.name,
            manager_name=manager.name,
            num_cores=self.config.num_cores,
            makespan_us=makespan,
            total_work_us=trace.total_work_us,
            num_tasks=num_tasks,
            submit_times=timeline.submit_dict() if keep else {},
            ready_times=timeline.ready_dict() if keep else {},
            start_times=timeline.start_dict() if keep else {},
            finish_times=timeline.finish_dict() if keep else {},
            master_finish_us=master_time,
            core_busy_us=core_busy_us,
            manager_stats=dict(manager.statistics()),
            scheduler=policy.name,
            topology=self.topology.describe(),
            per_core_busy_us=tuple(pool.busy_us),
            task_cores=timeline.core_dict() if keep else {},
        )


def simulate(
    trace: Trace,
    manager: TaskManagerModel,
    num_cores: int,
    *,
    validate: bool = False,
    keep_schedule: bool = True,
    scheduler: PolicyLike = "fifo",
    topology: TopologyLike = "homogeneous",
) -> MachineResult:
    """Convenience wrapper: run ``trace`` on ``manager`` with ``num_cores``."""
    machine = Machine(
        manager,
        MachineConfig(
            num_cores=num_cores,
            validate=validate,
            keep_schedule=keep_schedule,
            scheduler=scheduler,
            topology=topology,
        ),
    )
    return machine.run(trace)
