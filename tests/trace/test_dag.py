"""Tests for the dependency-graph analysis."""

import pytest

from repro.common.errors import SimulationError
from repro.trace.dag import build_dependency_graph, last_writer_map, validate_schedule
from repro.trace.trace import TraceBuilder
from repro.workloads.synthetic import generate_chain, generate_independent


def diamond():
    builder = TraceBuilder("diamond")
    builder.add_task("A", 10.0, outputs=[0x1])
    builder.add_task("B", 10.0, inputs=[0x1], outputs=[0x2])
    builder.add_task("C", 10.0, inputs=[0x1], outputs=[0x3])
    builder.add_task("D", 10.0, inputs=[0x2, 0x3], outputs=[0x4])
    return builder.build()


class TestBuildDependencyGraph:
    def test_diamond_edges(self):
        g = build_dependency_graph(diamond())
        assert g.predecessors[0] == set()
        assert g.predecessors[1] == {0}
        assert g.predecessors[2] == {0}
        assert g.predecessors[3] == {1, 2}
        assert g.successors[0] == {1, 2}
        assert g.num_edges == 4

    def test_raw_dependency(self):
        builder = TraceBuilder("raw")
        builder.add_task("w", 1.0, outputs=[0x1])
        builder.add_task("r", 1.0, inputs=[0x1])
        g = build_dependency_graph(builder.build())
        assert g.predecessors[1] == {0}

    def test_war_dependency(self):
        builder = TraceBuilder("war")
        builder.add_task("r", 1.0, inputs=[0x1])
        builder.add_task("w", 1.0, outputs=[0x1])
        g = build_dependency_graph(builder.build())
        assert g.predecessors[1] == {0}

    def test_waw_dependency(self):
        builder = TraceBuilder("waw")
        builder.add_task("w1", 1.0, outputs=[0x1])
        builder.add_task("w2", 1.0, outputs=[0x1])
        g = build_dependency_graph(builder.build())
        assert g.predecessors[1] == {0}

    def test_independent_readers_share_no_edge(self):
        builder = TraceBuilder("readers")
        builder.add_task("w", 1.0, outputs=[0x1])
        builder.add_task("r1", 1.0, inputs=[0x1])
        builder.add_task("r2", 1.0, inputs=[0x1])
        g = build_dependency_graph(builder.build())
        assert g.predecessors[2] == {0}
        assert 1 not in g.predecessors[2]

    def test_writer_after_readers_depends_on_all(self):
        builder = TraceBuilder("readers-then-writer")
        builder.add_task("w", 1.0, outputs=[0x1])
        builder.add_task("r1", 1.0, inputs=[0x1])
        builder.add_task("r2", 1.0, inputs=[0x1])
        builder.add_task("w2", 1.0, outputs=[0x1])
        g = build_dependency_graph(builder.build())
        assert g.predecessors[3] == {0, 1, 2}

    def test_independent_tasks_have_no_edges(self):
        g = build_dependency_graph(generate_independent(10, seed=1))
        assert g.num_edges == 0
        assert len(g.roots()) == 10

    def test_chain_structure(self):
        g = build_dependency_graph(generate_chain(5, seed=1))
        assert g.num_edges == 4
        assert g.dependency_count_range() == (0, 1)


class TestCriticalPath:
    def test_diamond_critical_path(self):
        g = build_dependency_graph(diamond())
        assert g.critical_path_length() == pytest.approx(30.0)
        assert g.total_work() == pytest.approx(40.0)
        assert g.max_parallelism() == pytest.approx(40.0 / 30.0)

    def test_chain_critical_path_equals_total(self):
        g = build_dependency_graph(generate_chain(6, duration_us=3.0, seed=1))
        assert g.critical_path_length() == pytest.approx(g.total_work())

    def test_independent_max_parallelism(self):
        g = build_dependency_graph(generate_independent(8, duration_us=2.0, seed=1))
        assert g.max_parallelism() == pytest.approx(8.0)

    def test_topological_generations(self):
        g = build_dependency_graph(diamond())
        generations = g.topological_generations()
        assert generations[0] == [0]
        assert sorted(generations[1]) == [1, 2]
        assert generations[2] == [3]


class TestLastWriterMap:
    def test_maps_barrier_to_last_writer(self):
        builder = TraceBuilder("lw")
        builder.add_task("w1", 1.0, outputs=[0x1])
        builder.add_task("w2", 1.0, outputs=[0x1])
        builder.add_taskwait_on(0x1)
        builder.add_taskwait_on(0x999)
        trace = builder.build()
        mapping = last_writer_map(trace)
        assert mapping[2] == 1
        assert mapping[3] is None


class TestValidateSchedule:
    def test_valid_schedule_passes(self):
        trace = diamond()
        starts = {0: 0.0, 1: 10.0, 2: 10.0, 3: 20.0}
        ends = {k: v + 10.0 for k, v in starts.items()}
        validate_schedule(trace, starts, ends)

    def test_dependency_violation_detected(self):
        trace = diamond()
        starts = {0: 0.0, 1: 5.0, 2: 10.0, 3: 20.0}
        ends = {0: 10.0, 1: 15.0, 2: 20.0, 3: 30.0}
        with pytest.raises(SimulationError):
            validate_schedule(trace, starts, ends)

    def test_missing_task_detected(self):
        trace = diamond()
        with pytest.raises(SimulationError):
            validate_schedule(trace, {0: 0.0}, {0: 10.0})

    def test_finish_before_start_detected(self):
        trace = diamond()
        starts = {0: 0.0, 1: 10.0, 2: 10.0, 3: 20.0}
        ends = {0: 10.0, 1: 20.0, 2: 20.0, 3: 15.0}
        with pytest.raises(SimulationError):
            validate_schedule(trace, starts, ends)
