"""Synchronous client library for the serving layer.

Thin stdlib-``http.client`` wrappers used by the test harness, the load
generator and the ``python -m repro.serve`` CLI subcommands.  One
:class:`ServeClient` holds one keep-alive connection (create one client
per thread); a saturated server surfaces as :class:`ServeSaturated`
carrying the ``Retry-After`` the admission controller measured.

    >>> client = ServeClient("127.0.0.1", 8080)          # doctest: +SKIP
    >>> client.simulate(workload="sparselu", manager="nexus#6",
    ...                 cores=4, scale=0.1)["makespan_us"]  # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.resilience.retry import (
    RetryBudgetExhausted,
    RetryPolicy,
    call_with_retry,
)
from repro.trace.serialization import trace_to_json
from repro.trace.trace import Trace

__all__ = ["ServeClient", "ServeError", "ServeSaturated", "CLIENT_RETRY_POLICY"]

#: Default client-side policy: the same shared
#: :class:`~repro.resilience.retry.RetryPolicy` the socket workers use
#: for reconnects — one backoff discipline across every client seam.
CLIENT_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.05, max_delay=1.0, deadline=30.0)


class ServeError(Exception):
    """A non-2xx response from the serving layer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeSaturated(ServeError):
    """HTTP 429: the bounded queue is full; honour ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(429, message)
        self.retry_after_s = retry_after_s


class ServeClient:
    """One keep-alive connection to a serving deployment.

    Idempotent JSON requests (everything here is — the engine is
    deterministic) are retried under ``retry``: transport errors and
    5xx back off on the policy's deterministic-jitter schedule, while a
    429 honours the server's measured ``Retry-After`` instead.  Pass
    ``retry=None`` for strict single-shot behaviour.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 300.0,
                 retry: Optional[RetryPolicy] = CLIENT_RETRY_POLICY) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retries = 0  # attempts beyond the first, across all calls
        self._sleep: Callable[[float], None] = time.sleep
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json") -> http.client.HTTPResponse:
        conn = self._connection()
        headers = {"Content-Type": content_type} if body is not None else {}
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        except (http.client.HTTPException, ConnectionError, OSError):
            # A dropped keep-alive connection: reconnect once.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        return response

    def _json_once(self, method: str, path: str,
                   body: Optional[bytes]) -> Dict[str, Any]:
        response = self._request(method, path, body)
        payload = response.read()
        return self._decode(response, payload)

    def _json(self, method: str, path: str,
              document: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body = None if document is None else json.dumps(document).encode("utf-8")
        if self.retry is None:
            return self._json_once(method, path, body)
        return self._with_retry(lambda: self._json_once(method, path, body),
                                describe=f"{method} {path}")

    def _with_retry(self, fn: Callable[[], Any], describe: str) -> Any:
        def _count(attempt: int, exc: BaseException, pause: float) -> None:
            self.retries += 1
            self.close()  # a fresh connection for the next attempt

        try:
            return call_with_retry(
                fn,
                self.retry,
                retry_on=(OSError, http.client.HTTPException, ServeError),
                should_retry=lambda exc: not isinstance(exc, ServeError)
                or isinstance(exc, ServeSaturated) or exc.status >= 500,
                retry_after=lambda exc: exc.retry_after_s
                if isinstance(exc, ServeSaturated) else None,
                key=describe,
                describe=describe,
                sleep=self._sleep,
                on_retry=_count,
            )
        except RetryBudgetExhausted as exhausted:
            # Preserve the client's exception contract: callers catch
            # ServeError/OSError, not the retry layer's budget error.
            raise exhausted.last_error from exhausted

    @staticmethod
    def _decode(response: http.client.HTTPResponse, payload: bytes) -> Dict[str, Any]:
        try:
            document = json.loads(payload.decode("utf-8")) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            document = {"error": payload[:200].decode("latin-1")}
        if response.status == 429:
            retry = document.get("retry_after_s",
                                 response.headers.get("Retry-After", 1))
            raise ServeSaturated(str(document.get("error", "saturated")),
                                 float(retry))
        if response.status >= 400:
            raise ServeError(response.status,
                             str(document.get("error", "request failed")))
        return document

    # -- endpoints ---------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/stats")

    def workloads(self) -> List[str]:
        return list(self._json("GET", "/v1/workloads")["workloads"])

    def simulate(self, **fields: Any) -> Dict[str, Any]:
        """Submit one grid cell; returns the response document
        (``cache_key``, ``cached``, ``makespan_us``, ``result``)."""
        return self._json("POST", "/v1/simulate", fields)

    def upload_trace(self, trace: Trace) -> str:
        """Upload a materialised trace (document format); returns its id."""
        body = json.dumps(trace_to_json(trace)).encode("utf-8")
        response = self._request("POST", "/v1/traces", body)
        return str(self._decode(response, response.read())["trace_id"])

    def upload_trace_text(self, text: str) -> str:
        """Upload a chunked-JSONL trace stream carried as text."""
        response = self._request("POST", "/v1/traces", text.encode("utf-8"),
                                 content_type="application/jsonl")
        return str(self._decode(response, response.read())["trace_id"])

    def sweep_report(self, **fields: Any) -> Dict[str, Any]:
        """Run a sweep and return its report document."""
        fields["format"] = "report"
        return self._json("POST", "/v1/sweep", fields)

    def sweep_rows(self, **fields: Any) -> Iterator[Dict[str, Any]]:
        """Run a sweep, yielding result rows as the server streams them.

        ``http.client`` decodes the chunked transfer transparently; a
        server-side truncation (missing terminal chunk) surfaces as
        :class:`http.client.IncompleteRead`.
        """
        fields["format"] = "jsonl"
        body = json.dumps(fields).encode("utf-8")
        response = self._request("POST", "/v1/sweep", body)
        if response.status != 200:
            self._decode(response, response.read())  # raises
        buffer = b""
        while True:
            block = response.read(65536)
            if not block:
                break
            buffer += block
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line)
        if buffer.strip():
            yield json.loads(buffer)
        # The server closes streamed connections (Connection: close).
        self.close()

    def sweep_raw(self, **fields: Any) -> bytes:
        """Run a sweep and return the raw streamed JSONL body.

        This is the byte-identity surface: the returned bytes must equal
        the file a :class:`~repro.experiments.runner.SweepRunner` writes
        for the same grid (trailing newlines included).  The whole
        request (including a stream cut short mid-body) retries under
        the client policy — sweeps are deterministic, so a re-run can
        only produce the same bytes.
        """
        fields["format"] = "jsonl"
        body = json.dumps(fields).encode("utf-8")

        def _once() -> bytes:
            response = self._request("POST", "/v1/sweep", body)
            if response.status != 200:
                self._decode(response, response.read())  # raises
            payload = response.read()
            self.close()  # the server closes streamed connections
            return payload

        if self.retry is None:
            return _once()
        return self._with_retry(_once, describe="POST /v1/sweep")

    def sweep_lines(self, **fields: Any) -> List[str]:
        """Run a sweep and return its JSONL lines (no trailing newline),
        comparable to :meth:`SweepOutcome.jsonl_lines
        <repro.experiments.runner.SweepOutcome.jsonl_lines>`."""
        raw = self.sweep_raw(**fields).decode("utf-8")
        return [line for line in raw.split("\n") if line]
