"""``python -m repro.experiments`` — alias for the sweep CLI."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
