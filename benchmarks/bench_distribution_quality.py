"""Figure 3 design study — fairness of the XOR-fold distribution hash.

The paper motivates the distribution function with a best case (round
robin: every task graph busy) and a worst case (blocked assignment: task
graphs take turns).  This ablation measures how close the XOR-fold hash
gets to the round-robin ideal on a realistic heap-address stream, and how
badly a single hot address (the Gaussian-elimination pattern) degrades it.
"""

import numpy as np
import pytest

from repro.analysis.figures import distribution_quality_report
from repro.nexus.distribution import distribution_histogram, fairness_index, nexus_hash_array


def test_distribution_fairness_on_heap_stream(benchmark, report_recorder):
    report = benchmark.pedantic(
        distribution_quality_report,
        kwargs={"num_addresses": 50000, "task_graph_counts": (2, 4, 6, 8, 16, 32)},
        rounds=1, iterations=1,
    )
    report_recorder("distribution_quality", report["text"])
    for num_tg, entry in report["data"].items():
        # Near-round-robin fairness for every configuration the paper
        # supports (up to 32 task graphs).
        assert entry["fairness"] > 0.9, f"{num_tg} task graphs unfair: {entry['fairness']:.3f}"
        assert entry["histogram"].min() > 0


def test_distribution_hash_throughput(benchmark):
    """Vectorised hash throughput (pure micro-benchmark, many rounds)."""
    addresses = (0x7F3A_0000_0000 + 64 * np.arange(100_000)).astype(np.uint64)
    result = benchmark(nexus_hash_array, addresses, 6)
    assert result.shape == addresses.shape


def test_single_hot_address_is_worst_case(benchmark):
    """The Gaussian pivot-row pattern: one address receives all accesses,
    so fairness collapses to 1/n regardless of the hash quality."""

    def measure():
        histogram = distribution_histogram([0x7F3A_0000_0040] * 10_000, 8)
        return fairness_index(histogram)

    fairness = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert fairness == pytest.approx(1.0 / 8.0, rel=0.01)
