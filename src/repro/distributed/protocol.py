"""Wire protocol of the sweep fabric: length-prefixed JSON frames.

Every message between the scheduler and a worker is one **frame**::

    +----------------+----------------------------+
    | uint32 (BE)    | UTF-8 JSON object          |
    | payload length | {"type": ..., ...}         |
    +----------------+----------------------------+

Frames are small control documents (``need_work``, ``work``,
``result``, ``heartbeat``, ...); the single bulky transfer — the
pickled job table a worker receives once at handshake — rides inside a
frame as a zlib-compressed, base64-encoded pickle string
(:func:`encode_payload` / :func:`decode_payload`).

.. warning::
   ``decode_payload`` unpickles its input.  The fabric is a trusted
   single-tenant system: only connect workers to a scheduler you run
   yourself (the same trust model as ``multiprocessing``).

:class:`FrameStream` wraps a connected socket with a receive buffer and
a send lock, so one reader thread and any number of sender threads
(results, heartbeats, steals) can share the connection safely.
"""

from __future__ import annotations

import base64
import json
import pickle
import select
import socket
import struct
import threading
import zlib
from typing import Any, Dict, Optional

from repro.common.errors import ReproError

#: Frames above this size are rejected on both ends — a corrupt length
#: prefix must not make a peer try to allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ReproError):
    """A malformed, truncated or oversized fabric frame was observed."""


class FrameTooLarge(ProtocolError):
    """A frame length above :data:`MAX_FRAME_BYTES` was announced or built.

    Carries the offending ``length``, the ``limit`` it broke, and the
    ``peer`` that announced it (``None`` for the send side).  Raised
    *before* any buffer bytes are consumed, so the stream's receive
    state is left exactly as it was — rejecting an oversized frame must
    not corrupt the framing of whatever else is buffered.
    """

    def __init__(self, length: int, limit: int = MAX_FRAME_BYTES,
                 peer: Optional[str] = None) -> None:
        origin = f"from {peer} " if peer else ""
        super().__init__(
            f"frame {origin}announces {length} bytes (limit {limit}); "
            f"corrupt stream?")
        self.length = length
        self.limit = limit
        self.peer = peer


def encode_payload(obj: Any) -> str:
    """Pack an arbitrary picklable object for transport inside a frame."""
    return base64.b64encode(zlib.compress(pickle.dumps(obj))).decode("ascii")


def decode_payload(data: str) -> Any:
    """Inverse of :func:`encode_payload` (trusted input only, see above)."""
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(data.encode("ascii"))))
    except (ValueError, zlib.error, pickle.UnpicklingError, EOFError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc


def pack_frame(doc: Dict[str, Any]) -> bytes:
    """Serialize one frame document to its wire bytes."""
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLarge(len(body))
    return _LENGTH.pack(len(body)) + body


class FrameStream:
    """Framed, thread-safe view of one connected fabric socket.

    * :meth:`send` may be called from several threads (one lock
      serializes the writes, keeping frames contiguous on the wire);
    * :meth:`recv` / :meth:`poll` belong to a single reader thread;
    * :attr:`eof` latches once the peer closes its end cleanly.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.eof = False
        self._buffer = bytearray()
        self._send_lock = threading.Lock()
        try:
            self.peer: Optional[str] = "%s:%s" % sock.getpeername()[:2]
        except (OSError, TypeError, IndexError):
            self.peer = None

    # -- sending -----------------------------------------------------------
    def send(self, doc: Dict[str, Any]) -> None:
        data = pack_frame(doc)
        with self._send_lock:
            self.sock.sendall(data)

    # -- receiving ---------------------------------------------------------
    def _extract(self) -> Optional[Dict[str, Any]]:
        """Pop one complete frame out of the buffer, or ``None``."""
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            # Raised before a single buffer byte is consumed: the
            # rejection is repeatable and the stream state unpoisoned.
            raise FrameTooLarge(length, peer=self.peer)
        if len(self._buffer) < _LENGTH.size + length:
            return None
        body = bytes(self._buffer[_LENGTH.size:_LENGTH.size + length])
        del self._buffer[:_LENGTH.size + length]
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or "type" not in doc:
            raise ProtocolError(f"frame is not a typed object: {doc!r}")
        return doc

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Block for the next frame.

        Returns the frame document, or ``None`` when the peer closed the
        connection at a clean frame boundary (:attr:`eof` is set).  A
        connection that dies *mid-frame* — a worker killed during a
        ``sendall`` — raises :class:`ProtocolError` instead, so a torn
        result can never be mistaken for a clean goodbye.  ``timeout``
        bounds the wait (``None`` blocks indefinitely); expiry raises
        :class:`TimeoutError`.
        """
        while True:
            frame = self._extract()
            if frame is not None:
                return frame
            if self.eof:
                if self._buffer:
                    raise ProtocolError(
                        f"peer closed mid-frame ({len(self._buffer)} stray bytes)")
                return None
            if timeout is not None:
                ready, _, _ = select.select([self.sock], [], [], timeout)
                if not ready:
                    raise TimeoutError("timed out waiting for a fabric frame")
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                self.eof = True
                continue
            self._buffer.extend(chunk)

    def poll(self) -> Optional[Dict[str, Any]]:
        """Return a frame if one is available without blocking.

        ``None`` means "no complete frame right now" — check
        :attr:`eof` to distinguish a quiet peer from a gone one.
        """
        while True:
            frame = self._extract()
            if frame is not None:
                return frame
            if self.eof:
                return None
            ready, _, _ = select.select([self.sock], [], [], 0)
            if not ready:
                return None
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                self.eof = True
                return None
            self._buffer.extend(chunk)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
