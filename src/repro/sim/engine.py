"""Event queue and simulation driver.

The engine is intentionally minimal: a binary heap of ``(time, priority,
sequence, payload)`` tuples with deterministic ordering.  The higher-level
:class:`repro.system.machine.Machine` uses it to interleave task
submissions, ready notifications and task completions; manager models use
it only indirectly (they reason about resource timelines instead of
scheduling fine-grained events, which keeps large traces tractable).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.common.errors import SimulationError


@dataclass(order=True, frozen=True)
class Event:
    """A single scheduled event.

    Ordering is by ``(time, priority, sequence)``; ``payload`` and ``kind``
    never participate in comparisons, which keeps the ordering total and
    deterministic even when payloads are not comparable.
    """

    time: float
    priority: int
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event and return it."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, priority=priority, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop() from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise SimulationError("peek() into an empty event queue")
        return self._heap[0]

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()

    def drain(self) -> Iterator[Event]:
        """Yield events in time order until the queue is empty."""
        while self._heap:
            yield self.pop()


class Simulator:
    """A small callback-driven simulation loop.

    Handlers are registered per event kind; :meth:`run` pops events in
    time order and dispatches them.  The simulator tracks the current
    simulation time and enforces that it never moves backwards.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self._handlers: dict[str, Callable[[Simulator, Event], None]] = {}
        self._processed: int = 0
        self._running = False

    # -- configuration ----------------------------------------------------
    def on(self, kind: str, handler: Callable[["Simulator", Event], None]) -> None:
        """Register ``handler`` for events of ``kind`` (overwrites silently)."""
        self._handlers[kind] = handler

    def schedule(self, delay: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.queue.push(self.now + delay, kind, payload, priority)

    def schedule_at(self, time: float, kind: str, payload: Any = None, priority: int = 0) -> Event:
        """Schedule an event at an absolute time (must not be in the past)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} before current time {self.now}")
        return self.queue.push(time, kind, payload, priority)

    # -- execution ---------------------------------------------------------
    @property
    def processed_events(self) -> int:
        """Number of events dispatched so far."""
        return self._processed

    def step(self) -> Optional[Event]:
        """Process a single event; return it, or ``None`` if queue empty."""
        if not self.queue:
            return None
        event = self.queue.pop()
        if event.time < self.now - 1e-12:
            raise SimulationError(
                f"event {event.kind!r} at t={event.time} is in the past (now={self.now})"
            )
        self.now = max(self.now, event.time)
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise SimulationError(f"no handler registered for event kind {event.kind!r}")
        handler(self, event)
        self._processed += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at which the run stopped.  When an
        ``until`` horizon is given and the queue drains (or the next event
        lies beyond it), time advances to the horizon — the simulated
        world idled up to ``until``; a horizon already in the past leaves
        the clock untouched (time never moves backwards).  A stop caused
        by ``max_events`` does *not* advance to the horizon: the run was
        cut short mid-simulation, not idled out.
        """
        self._running = True
        dispatched = 0
        stopped_by_max_events = False
        try:
            while self.queue:
                if until is not None and self.queue.peek().time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    stopped_by_max_events = True
                    break
                self.step()
                dispatched += 1
            if until is not None and not stopped_by_max_events:
                self.now = max(self.now, until)
        finally:
            self._running = False
        return self.now

    def reset(self) -> None:
        """Clear all pending events and rewind time to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self.queue.clear()
        self.now = 0.0
        self._processed = 0
