"""Vectorized multi-lane batch-simulation backend.

A parameter sweep replays the *same trace* across many grid cells —
seeds, core counts, managers — and the scalar engine pays the full
per-event Python dispatch cost (simulator callbacks, outcome tuples,
policy/pool indirection, per-access cell objects) once per cell.  This
module advances many such runs as independent **lanes in lockstep**:

* **structural compilation is shared across lanes.**  A trace is
  compiled once into a :class:`LaneProgram`: per-task access rows from
  the existing :class:`~repro.trace.compiled.CompiledAccessProgram`,
  augmented (with numpy) by an address-major CSR of each address's
  program-order access sequence and every access's position within it.
  Because the master thread submits tasks in trace order, the per-address
  OmpSs dependency state machine (:class:`~repro.taskgraph.address_state.
  AddressCell`) collapses to **four small integers per (lane, address)**
  — inserted cursor, activated cursor, active count, active-is-writer —
  advanced over the static address-major arrays.  No cells, sets or
  deques per lane.
* **timing tables are folded across the task axis and shared across the
  lane axis.**  Per-kernel cost columns (worker-overhead-inclusive
  nominal durations, Nanos creation/lock-insertion costs) are computed
  once per ``(program, kernel)`` with numpy elementwise arithmetic —
  IEEE-identical to the scalar per-event expressions — and reused by
  every lane of that kernel.
* **each lane runs a specialized inlined event loop** (a generator):
  a plain-tuple heap replicating the :class:`~repro.sim.engine.
  EventQueue` ``(time, priority, sequence)`` discipline, flat
  ``(lane, task)`` dependence-count/finished/dispatched state, an int
  heap of idle cores and a deque of queued ready tasks.  The lockstep
  driver round-robins fixed event slices over all live lanes.

The scalar engine stays the reference oracle: lane kernels exist only
for managers whose behaviour constant-folds (see
:meth:`repro.managers.base.TaskManagerModel.lane_kernel` — ideal and
Nanos today).  Every other lane — hardware managers with
history-dependent pipeline contention, non-FIFO schedulers,
heterogeneous topologies, sparse task ids — **falls back to the scalar
engine inside the same batch**, so ``run_lanes`` is always exact:
results are byte-identical to per-lane :meth:`~repro.system.machine.
Machine.run` calls by construction on the fallback path and by the
golden/differential harnesses (``tests/batch/``,
``tests/golden/test_batch_equivalence.py``) on the vector path.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.managers.base import LaneKernelSpec, TaskManagerModel
from repro.system.results import MachineResult
from repro.system.scheduling import make_policy
from repro.system.timeline import TaskTimeline
from repro.system.topology import resolve_topology
from repro.trace.dag import validate_schedule
from repro.trace.trace import Trace

#: Attribute under which a trace caches its lane program (``_compiled*``
#: prefixed, so ``Trace.__getstate__`` excludes it from pickles).
_LANE_PROGRAM_ATTR = "_compiled_lane_program"

#: Events each live lane processes per lockstep round.
DEFAULT_SLICE_EVENTS = 1024

# Event op codes, mirroring repro.system.machine's compiled trace.
_OP_SUBMIT = 0
_OP_WAIT = 1
_OP_WAIT_ON = 2


@dataclass(frozen=True)
class LaneSpec:
    """One lane of a batch: a trace replayed on a manager under a config."""

    trace: Trace
    manager: TaskManagerModel
    config: "MachineConfig"  # noqa: F821 - resolved via repro.system.machine


class LaneProgram:
    """Lane-invariant structural compilation of one trace.

    Everything here depends only on the trace — never on the manager,
    core count or seed of a lane — so one program is shared by all lanes
    (and cached on the trace object like the machine's compiled form).
    """

    __slots__ = (
        "num_tasks", "num_events", "num_addresses",
        "ops", "op_slot", "op_wait_task",
        "acc_off", "acc_aid", "acc_flags",
        "addr_off", "addr_task", "addr_flags",
        "duration", "creation", "num_params_eff", "total_work_us",
        "has_wait_on", "dense_ids", "_kernel_cache",
    )

    def __init__(self, trace: Trace) -> None:
        from repro.system.machine import _compile_trace

        compiled = _compile_trace(trace)
        program = trace.access_program()
        self.dense_ids = compiled.slot_of is None and program._slot_of is None
        self.num_tasks = compiled.num_tasks
        self.num_events = len(compiled.ops)
        self.num_addresses = program.num_addresses
        self.ops = compiled.ops
        # Per-event operands: the submitted task's slot, and the
        # structurally-precomputed `taskwait on` wait target (the last
        # preceding writer of the address in trace order, or -1).  The
        # scalar loop resolves the latter from a live last-writer dict,
        # but the dict is only ever *grown* in trace order, so the
        # resolution is static.
        op_slot = [0] * self.num_events
        op_wait_task = [-1] * self.num_events
        self.has_wait_on = _OP_WAIT_ON in self.ops
        if self.has_wait_on:
            last_writer: Dict[int, int] = {}
            slot = 0
            for index, op in enumerate(self.ops):
                if op == _OP_SUBMIT:
                    task = compiled.tasks[index]
                    op_slot[index] = slot
                    slot += 1
                    for address in compiled.write_addrs[index]:
                        last_writer[address] = task.task_id
                elif op == _OP_WAIT_ON:
                    op_wait_task[index] = last_writer.get(compiled.wait_addrs[index], -1)
        else:
            # No `taskwait on` anywhere: slots are assignable without
            # walking write sets (a C-speed membership test above saves
            # the per-task last-writer bookkeeping entirely).
            slot = 0
            for index, op in enumerate(self.ops):
                if op == _OP_SUBMIT:
                    op_slot[index] = slot
                    slot += 1
        self.op_slot = op_slot
        self.op_wait_task = op_wait_task

        # Task-major access rows (straight from the compiled program).
        self.acc_off = program.offsets
        self.acc_aid = program.addr_ids
        self.acc_flags = program.flags

        # Address-major CSR: each address's accesses in program order.
        # Built with numpy once per trace; a stable argsort groups the
        # flat task-major accesses by address while preserving the
        # submission order within each address.
        num_accesses = len(program.addr_ids)
        if num_accesses:
            aid = np.asarray(program.addr_ids, dtype=np.int64)
            offsets = np.asarray(program.offsets, dtype=np.int64)
            counts = np.bincount(aid, minlength=self.num_addresses)
            addr_off = np.zeros(self.num_addresses + 1, dtype=np.int64)
            np.cumsum(counts, out=addr_off[1:])
            order = np.argsort(aid, kind="stable")
            slot_of_access = np.repeat(
                np.arange(self.num_tasks, dtype=np.int64), np.diff(offsets)
            )
            flags = np.asarray(program.flags, dtype=np.int64)
            self.addr_off = addr_off.tolist()
            self.addr_task = slot_of_access[order].tolist()
            self.addr_flags = flags[order].tolist()
            num_params_eff = np.maximum(np.diff(offsets), 1)
        else:
            self.addr_off = [0] * (self.num_addresses + 1)
            self.addr_task = []
            self.addr_flags = []
            num_params_eff = np.ones(self.num_tasks, dtype=np.int64)
        self.num_params_eff = num_params_eff

        tasks = compiled.task_by_slot
        self.duration = [task.duration_us for task in tasks]
        self.creation = [task.creation_overhead_us for task in tasks]
        # Cached once per trace; every lane's MachineResult repeats it
        # (same left-to-right float sum as Trace.total_work_us).
        self.total_work_us = trace.total_work_us
        self._kernel_cache: Dict[LaneKernelSpec, Tuple[list, ...]] = {}

    def kernel_columns(self, kern: LaneKernelSpec) -> Tuple[list, list, list]:
        """Per-task cost columns of ``kern``, folded once and shared.

        Returns ``(nominal, creation_pp, insert_cost)`` lists indexed by
        task slot:

        * ``nominal[s]`` — worker occupancy ``worker_overhead +
          duration`` (both kernels);
        * ``creation_pp[s]`` — the Nanos per-parameter creation term
          ``creation_per_param_us * max(1, num_accesses)``, kept as a
          separate addend so the runtime sum ``(time + base) + pp``
          associates exactly like the scalar expression;
        * ``insert_cost[s]`` — the full Nanos locked-insertion cost
          ``insert_lock_us + insert_lock_per_param_us * max(1, n)``.

        All three are numpy float64 elementwise expressions — the same
        IEEE operations, in the same order, as the scalar per-event
        arithmetic, hence byte-identical values.
        """
        cached = self._kernel_cache.get(kern)
        if cached is None:
            durations = np.asarray(self.duration, dtype=np.float64)
            nominal = (kern.worker_overhead_us + durations).tolist()
            if kern.kind == "nanos":
                params = self.num_params_eff.astype(np.float64)
                creation_pp = (kern.creation_per_param_us * params).tolist()
                insert_cost = (
                    kern.insert_lock_us + kern.insert_lock_per_param_us * params
                ).tolist()
            else:
                creation_pp = []
                insert_cost = []
            cached = (nominal, creation_pp, insert_cost)
            self._kernel_cache[kern] = cached
        return cached


def lane_program(trace: Trace) -> LaneProgram:
    """Return the cached :class:`LaneProgram` of ``trace``."""
    program = trace.__dict__.get(_LANE_PROGRAM_ATTR)
    if program is None:
        program = LaneProgram(trace)
        object.__setattr__(trace, _LANE_PROGRAM_ATTR, program)
    return program


def lane_fallback_reason(
    trace: object, manager: TaskManagerModel, config: "MachineConfig"  # noqa: F821
) -> Optional[str]:
    """Why a lane must run on the scalar engine, or ``None`` if the
    vectorized kernel applies.

    The lane-compatibility rules (documented in ``docs/performance.md``):
    the manager must publish a :class:`~repro.managers.base.
    LaneKernelSpec`, the trace must be a materialised static trace with
    dense task ids, dispatch must be FIFO over a homogeneous unit-speed
    topology, and ``taskwait on`` pragmas require manager support (no
    Nexus++-style degradation is folded into lane programs).
    """
    if not isinstance(trace, Trace):
        return "not a materialised static trace"
    kern = manager.lane_kernel()
    if kern is None:
        return f"manager {manager.name!r} publishes no lane kernel"
    if make_policy(config.scheduler).name != "fifo":
        return "non-FIFO scheduler policy"
    topology = resolve_topology(config.topology, config.num_cores)
    if any(speed != 1.0 for speed in topology.speed_factors):
        return "non-unit core speeds"
    prog = lane_program(trace)
    if not prog.dense_ids:
        return "sparse task ids"
    if prog.has_wait_on and not manager.supports_taskwait_on:
        return "taskwait-on degradation requires the scalar master loop"
    return None


def run_lanes(
    lanes: Sequence[LaneSpec],
    *,
    slice_events: int = DEFAULT_SLICE_EVENTS,
) -> List[MachineResult]:
    """Run every lane to completion; results in lane order.

    Vector-compatible lanes (see :func:`lane_fallback_reason`) advance
    in lockstep rounds of ``slice_events`` events each; incompatible
    lanes replay sequentially on the scalar engine afterwards.  An empty
    batch returns an empty list without touching any engine.
    """
    if slice_events <= 0:
        raise SimulationError(f"slice_events must be positive, got {slice_events}")
    results: List[Optional[MachineResult]] = [None] * len(lanes)
    live: List[Tuple[int, Generator[None, None, MachineResult]]] = []
    fallback: List[int] = []
    for index, lane in enumerate(lanes):
        if lane_fallback_reason(lane.trace, lane.manager, lane.config) is None:
            live.append((index, _lane_run(lane, slice_events)))
        else:
            fallback.append(index)
    while live:
        advancing: List[Tuple[int, Generator[None, None, MachineResult]]] = []
        for index, gen in live:
            try:
                next(gen)
            except StopIteration as stop:
                results[index] = stop.value
            else:
                advancing.append((index, gen))
        live = advancing
    if fallback:
        from repro.system.machine import Machine

        for index in fallback:
            lane = lanes[index]
            results[index] = Machine(lane.manager, lane.config).run(lane.trace)
    return results  # type: ignore[return-value] - every slot is filled above


def _lane_run(
    lane: LaneSpec, slice_events: int
) -> Generator[None, None, MachineResult]:
    """One lane's specialized event loop, yielding every ``slice_events``
    task completions (the cheapest progress proxy on the hot path).

    This inlines — in replicated order — the scalar stack for the FIFO /
    homogeneous / dense-ids configuration: ``Machine._run_trace``'s
    master loop and event handlers, ``EventQueue``'s ``(time, priority,
    sequence)`` heap discipline, ``CorePool``'s lowest-id idle-core heap,
    ``FifoPolicy``'s deque, the compiled ``DependencyTracker`` insert /
    finish semantics reduced to per-address cursors, and the lane
    kernel's manager arithmetic (including exact
    :meth:`~repro.sim.resource.SerialResource.reserve` replication for
    the Nanos lock).  Schedules are byte-identical to the scalar engine;
    any behavioural change there must land here too (the batch golden
    and differential suites guard the pairing).
    """
    trace = lane.trace
    manager = lane.manager
    config = lane.config
    kern = manager.lane_kernel()
    assert kern is not None
    prog = lane_program(trace)
    nominal, creation_pp, insert_cost = prog.kernel_columns(kern)

    num_tasks = prog.num_tasks
    num_events = prog.num_events
    num_cores = config.num_cores
    ops = prog.ops
    op_slot = prog.op_slot
    op_wait_task = prog.op_wait_task
    acc_off = prog.acc_off
    acc_aid = prog.acc_aid
    acc_flags = prog.acc_flags
    addr_off = prog.addr_off
    addr_task = prog.addr_task
    addr_flags = prog.addr_flags
    creation = prog.creation

    nanos = kern.kind == "nanos"
    creation_base = kern.creation_base_us
    finish_lock_us = kern.finish_lock_us
    wakeup_us = kern.wakeup_per_task_us

    # --- per-lane flat state ------------------------------------------------
    num_addresses = prog.num_addresses
    dep_count = [0] * num_tasks
    finished = bytearray(num_tasks)
    dispatched = bytearray(num_tasks)
    ins_n = [0] * num_addresses      # accesses inserted per address
    act_n = [0] * num_addresses      # accesses activated per address
    act_rem = [0] * num_addresses    # unfinished activated tasks
    act_writer = bytearray(num_addresses)

    heap: List[Tuple[float, int, int, int, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    seq = 0
    idle = list(range(num_cores))    # already a valid min-heap
    ready_queue: deque = deque()
    rq_append = ready_queue.append
    rq_popleft = ready_queue.popleft
    busy_us = [0.0] * num_cores
    core_busy_us = 0.0
    master_time = 0.0
    event_index = 0
    blocked_kind = 0                 # 0 = free, 1 = taskwait, 2 = taskwait-on
    blocked_task = -1
    master_done = False
    outstanding = 0
    finished_count = 0
    inserted_count = 0
    lock_free = 0.0                  # Nanos runtime lock (SerialResource)
    lock_reservations = 0
    lock_busy = 0.0
    lock_wait = 0.0
    now = 0.0

    collect = config.keep_schedule or config.validate
    if collect:
        nan = float("nan")
        submit_arr = [nan] * num_tasks
        ready_arr = [nan] * num_tasks
        start_arr = [nan] * num_tasks
        finish_arr = [nan] * num_tasks
        core_arr = [-1] * num_tasks

    # --- main loop ----------------------------------------------------------
    # The master advance is inlined into the generator body rather than
    # kept as a closure: any variable shared with a nested function
    # becomes a cell, which would turn every hot-path access in BOTH the
    # master loop and the event loop into a (slower) dereference.  With
    # everything a plain generator local, the interpreter uses fast
    # locals throughout.
    do_master = True
    next_yield = slice_events
    while True:
        if do_master:
            do_master = False
            while event_index < num_events:
                op = ops[event_index]
                if op == _OP_SUBMIT:
                    slot = op_slot[event_index]
                    outstanding += 1
                    if collect:
                        submit_arr[slot] = master_time
                    event_index += 1
                    # -- tracker insert: per-address cursor state machine --
                    index = acc_off[slot]
                    row_end = acc_off[slot + 1]
                    deps = 0
                    while index < row_end:
                        address = acc_aid[index]
                        flag = acc_flags[index]
                        index += 1
                        if act_n[address] == ins_n[address]:  # no queued waiters
                            if flag & 2:
                                if act_rem[address] == 0:
                                    act_writer[address] = 1
                                    act_rem[address] = 1
                                    act_n[address] += 1
                                    ins_n[address] += 1
                                    continue
                            elif act_rem[address] == 0 or not act_writer[address]:
                                act_writer[address] = 0
                                act_rem[address] += 1
                                act_n[address] += 1
                                ins_n[address] += 1
                                continue
                        ins_n[address] += 1
                        deps += 1
                    dep_count[slot] = deps
                    inserted_count += 1
                    # -- manager submit arithmetic --
                    if nanos:
                        creation_done = (master_time + creation_base) + creation_pp[slot]
                        cost = insert_cost[slot]
                        lock_start = creation_done if creation_done > lock_free else lock_free
                        lock_end = lock_start + cost
                        lock_free = lock_end
                        lock_reservations += 1
                        lock_busy += cost
                        lock_wait += lock_start - creation_done
                        accept = lock_end
                        ready_time = lock_end
                    else:
                        accept = master_time
                        ready_time = master_time
                    if deps == 0:
                        if collect:
                            ready_arr[slot] = ready_time
                        heappush(heap, (
                            ready_time if ready_time > master_time else master_time,
                            1, seq, slot, -1,
                        ))
                        seq += 1
                    next_time = master_time + creation[slot]
                    if accept > next_time:
                        next_time = accept
                    if next_time < master_time:
                        raise SimulationError(
                            f"manager {manager.name} accepted task {slot} in the past"
                        )
                    master_time = next_time
                    if event_index >= num_events:
                        master_done = True
                        break
                    if heap and heap[0][0] <= master_time:
                        heappush(heap, (master_time, 2, seq, -1, -1))
                        seq += 1
                        break
                    # Inline-submission fast path, exactly as in the scalar
                    # master loop: no pending event sorts before the next
                    # master step, so skip the queue bounce.
                    continue
                if op == _OP_WAIT:
                    if outstanding == 0:
                        event_index += 1
                        continue
                    blocked_kind = 1
                    break
                # op == _OP_WAIT_ON (manager support checked at lane admission)
                waited = op_wait_task[event_index]
                if waited < 0 or finished[waited]:
                    event_index += 1
                    continue
                blocked_kind = 2
                blocked_task = waited
                break
            else:
                master_done = True
        if not heap:
            break
        time, priority, _, task_id, core = heappop(heap)
        if time > now:
            now = time
        if priority == 0:  # task done
            outstanding -= 1
            finished[task_id] = 1
            finished_count += 1
            # -- tracker finish: release waiters in row x queue order --
            index = acc_off[task_id]
            row_end = acc_off[task_id + 1]
            newly_ready: List[int] = []
            kickoffs = 0
            while index < row_end:
                address = acc_aid[index]
                index += 1
                act_rem[address] -= 1
                cursor = act_n[address]
                limit = ins_n[address]
                if cursor < limit:
                    base = addr_off[address]
                    while cursor < limit:
                        waiter_flag = addr_flags[base + cursor]
                        if waiter_flag & 2:
                            if act_rem[address] == 0:
                                waiter = addr_task[base + cursor]
                                cursor += 1
                                act_rem[address] = 1
                                act_writer[address] = 1
                                kickoffs += 1
                                remaining = dep_count[waiter] - 1
                                dep_count[waiter] = remaining
                                if remaining == 0:
                                    newly_ready.append(waiter)
                            break
                        if act_rem[address] and act_writer[address]:
                            break
                        waiter = addr_task[base + cursor]
                        cursor += 1
                        act_rem[address] += 1
                        act_writer[address] = 0
                        kickoffs += 1
                        remaining = dep_count[waiter] - 1
                        dep_count[waiter] = remaining
                        if remaining == 0:
                            newly_ready.append(waiter)
                    act_n[address] = cursor
            # -- manager finish arithmetic --
            if nanos:
                cost = finish_lock_us + wakeup_us * kickoffs
                lock_start = time if time > lock_free else lock_free
                lock_end = lock_start + cost
                lock_free = lock_end
                lock_reservations += 1
                lock_busy += cost
                lock_wait += lock_start - time
                ready_time = lock_end
            else:
                ready_time = time
            for waiter in newly_ready:
                if collect:
                    ready_arr[waiter] = ready_time
                heappush(heap, (
                    ready_time if ready_time > time else time,
                    1, seq, waiter, -1,
                ))
                seq += 1
            # The freed core picks up the next queued ready task, if any
            # (inlined core dispatch: heappop(idle) is the lowest idle id,
            # matching CorePool on a homogeneous topology).
            heappush(idle, core)
            if ready_queue:
                next_task = rq_popleft()
                run_core = heappop(idle)
                duration = nominal[next_task]
                end = time + duration
                core_busy_us += duration
                busy_us[run_core] += duration
                if collect:
                    start_arr[next_task] = time
                    finish_arr[next_task] = end
                    core_arr[next_task] = run_core
                heappush(heap, (end, 0, seq, next_task, run_core))
                seq += 1
            # Barriers resolve on completions.
            if blocked_kind:
                if blocked_kind == 1:
                    satisfied = outstanding == 0
                else:
                    satisfied = bool(finished[blocked_task])
                if satisfied:
                    blocked_kind = 0
                    if time > master_time:
                        master_time = time
                    if not master_done:
                        heappush(heap, (master_time, 2, seq, -1, -1))
                        seq += 1
            if finished_count >= next_yield:
                next_yield = finished_count + slice_events
                yield None
        elif priority == 1:  # task ready
            if dispatched[task_id]:
                raise SimulationError(f"task {task_id} reported ready twice")
            dispatched[task_id] = 1
            if idle:
                run_core = heappop(idle)
                duration = nominal[task_id]
                end = time + duration
                core_busy_us += duration
                busy_us[run_core] += duration
                if collect:
                    start_arr[task_id] = time
                    finish_arr[task_id] = end
                    core_arr[task_id] = run_core
                heappush(heap, (end, 0, seq, task_id, run_core))
                seq += 1
            else:
                rq_append(task_id)
        else:  # master step
            if blocked_kind == 0 and not master_done:
                if time > master_time:
                    master_time = time
                do_master = True

    makespan = now if now > master_time else master_time

    # --- consistency checks (mirroring the scalar engine) --------------------
    if finished_count != num_tasks:
        missing = num_tasks - finished_count
        raise SimulationError(
            f"{manager.name} on {trace.name}: {missing} of {num_tasks} tasks never ran "
            "(deadlock or lost ready notification)"
        )
    if not master_done or blocked_kind:
        raise SimulationError(
            f"{manager.name} on {trace.name}: master thread did not reach the end of the trace"
        )

    timeline = TaskTimeline.from_columns(
        submit_arr, ready_arr, start_arr, finish_arr, core_arr
    ) if collect else None

    if config.validate:
        assert timeline is not None
        validate_schedule(trace, timeline.start_dict(), timeline.finish_dict())

    if nanos:
        manager_stats = {
            "tasks_inserted": inserted_count,
            "tasks_finished": finished_count,
            "lock_busy_us": lock_busy,
            "lock_mean_wait_us": lock_wait / lock_reservations if lock_reservations else 0.0,
        }
    else:
        manager_stats = {
            "tasks_inserted": inserted_count,
            "tasks_finished": finished_count,
        }

    keep = config.keep_schedule and timeline is not None
    return MachineResult(
        trace_name=trace.name,
        manager_name=manager.name,
        num_cores=num_cores,
        makespan_us=makespan,
        total_work_us=prog.total_work_us,
        num_tasks=num_tasks,
        submit_times=timeline.submit_dict() if keep else {},
        ready_times=timeline.ready_dict() if keep else {},
        start_times=timeline.start_dict() if keep else {},
        finish_times=timeline.finish_dict() if keep else {},
        master_finish_us=master_time,
        core_busy_us=core_busy_us,
        manager_stats=manager_stats,
        scheduler="fifo",
        topology=resolve_topology(config.topology, num_cores).describe(),
        per_core_busy_us=tuple(busy_us),
        task_cores=timeline.core_dict() if keep else {},
    )
