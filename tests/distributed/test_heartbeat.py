"""Heartbeat-timeout unit tests driven by a fake clock."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.distributed.scheduler import HeartbeatMonitor, SweepScheduler


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestHeartbeatMonitor:
    def test_fresh_worker_is_not_expired(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(5.0, clock)
        monitor.beat("w0")
        assert monitor.expired() == []
        assert monitor.last_seen("w0") == 100.0

    def test_silence_past_timeout_expires(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(5.0, clock)
        monitor.beat("w0")
        monitor.beat("w1")
        clock.advance(4.0)
        monitor.beat("w1")          # w1 keeps talking
        clock.advance(1.5)          # w0 silent for 5.5s, w1 for 1.5s
        assert monitor.expired() == ["w0"]

    def test_exactly_timeout_is_still_alive(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(5.0, clock)
        monitor.beat("w0")
        clock.advance(5.0)
        assert monitor.expired() == []
        clock.advance(0.001)
        assert monitor.expired() == ["w0"]

    def test_beat_revives_a_nearly_dead_worker(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(5.0, clock)
        monitor.beat("w0")
        clock.advance(4.999)
        monitor.beat("w0")
        clock.advance(4.999)
        assert monitor.expired() == []

    def test_forget_removes_from_expiry(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(1.0, clock)
        monitor.beat("w0")
        clock.advance(10.0)
        monitor.forget("w0")
        assert monitor.expired() == []
        assert monitor.last_seen("w0") is None
        monitor.forget("w0")  # idempotent

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(SimulationError):
            HeartbeatMonitor(0.0)
        with pytest.raises(SimulationError):
            HeartbeatMonitor(-1.0)


class TestIntervalClamp:
    """The interval workers are told to beat at must always fit the
    expiry deadline, or a short timeout would declare a healthy-but-busy
    worker dead between two of its own heartbeats."""

    def test_short_timeout_clamps_the_interval(self):
        scheduler = SweepScheduler([], external_workers=1,
                                   heartbeat_interval=1.0,
                                   heartbeat_timeout=0.8)
        assert scheduler.heartbeat_interval == pytest.approx(0.2)

    def test_generous_timeout_keeps_the_requested_interval(self):
        scheduler = SweepScheduler([], external_workers=1,
                                   heartbeat_interval=1.0,
                                   heartbeat_timeout=5.0)
        assert scheduler.heartbeat_interval == 1.0
