"""The sweep frontier: scheduler-side ownership ledger of grid cells.

:class:`SweepFrontier` tracks every not-yet-finished cell of a sweep and
answers the three questions the scheduler asks:

* *what should this worker run next?* — :meth:`next_chunk` pops the next
  **locality-aware chunk**: cells are grouped into contiguous runs that
  share a locality key (the workload identity, in grid order), so one
  worker replays many cells of one trace back-to-back and its
  per-process trace memo / compiled-program caches stay warm.
* *who can spare work for an idle worker?* — :meth:`steal` moves the
  tail half of the most-loaded worker's unfinished assignment to the
  idle one (the classic steal-from-the-back policy: the victim keeps the
  cells it is about to execute, the thief gets the far end).
* *what did a dead worker leave behind?* — :meth:`fail_worker` requeues
  its unfinished cells at the *front* of the queue (they are the oldest
  work in flight) with a bounded per-cell attempt budget, so a crashing
  cell cannot ping-pong between workers forever.

The frontier is plain bookkeeping — it never touches sockets and is not
itself thread-safe; the scheduler serializes access under its one lock.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Sequence, Set

from repro.common.errors import SimulationError


class SweepFrontier:
    """Ownership ledger for the cells of one distributed sweep.

    Parameters
    ----------
    cells:
        Cell identifiers (grid indices), in deterministic grid order.
    groups:
        Optional parallel sequence of locality keys; contiguous runs of
        equal keys are never split across a chunk boundary unless longer
        than ``chunk_size``.  ``None`` treats the whole grid as one run.
    chunk_size:
        Maximum cells handed out per :meth:`next_chunk`.
    max_attempts:
        Dispatch budget per cell.  A cell whose every dispatch ends in a
        dead worker is requeued at most ``max_attempts - 1`` times;
        exceeding the budget raises :class:`~repro.common.errors.
        SimulationError` (a cell that kills every worker it touches is a
        bug, not bad luck).
    """

    def __init__(
        self,
        cells: Sequence[int],
        groups: Optional[Sequence[Hashable]] = None,
        *,
        chunk_size: int = 16,
        max_attempts: int = 3,
    ) -> None:
        if chunk_size < 1:
            raise SimulationError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1, got {max_attempts}")
        if groups is not None and len(groups) != len(cells):
            raise SimulationError(
                f"{len(cells)} cells but {len(groups)} locality keys")
        self.total = len(cells)
        self.max_attempts = max_attempts
        self.chunk_size = chunk_size
        self._queue: Deque[List[int]] = deque(self._chunked(cells, groups))
        self._assigned: Dict[str, List[int]] = {}
        self._attempts: Dict[int, int] = {}
        self._done: Set[int] = set()

    def _chunked(
        self, cells: Sequence[int], groups: Optional[Sequence[Hashable]]
    ) -> List[List[int]]:
        chunks: List[List[int]] = []
        current: List[int] = []
        current_key: Hashable = object()
        for position, cell in enumerate(cells):
            key = groups[position] if groups is not None else None
            if current and (key != current_key or len(current) >= self.chunk_size):
                chunks.append(current)
                current = []
            current_key = key
            current.append(cell)
        if current:
            chunks.append(current)
        return chunks

    # -- dispatch ----------------------------------------------------------
    def next_chunk(self, worker: str) -> List[int]:
        """Assign and return the next chunk for ``worker`` (may be empty).

        Cells that finished while queued — a speculative duplicate won
        the race, or a journal replay pre-completed them — are silently
        skipped, never re-dispatched.
        """
        while self._queue:
            chunk = [c for c in self._queue.popleft() if c not in self._done]
            if not chunk:
                continue
            for cell in chunk:
                self._attempts[cell] = self._attempts.get(cell, 0) + 1
            self._assigned.setdefault(worker, []).extend(chunk)
            return chunk
        return []

    def steal(self, victim: str, thief: str) -> List[int]:
        """Move the tail half of ``victim``'s unfinished cells to ``thief``.

        Returns the stolen cells (possibly empty — a victim with fewer
        than two unfinished cells keeps what it has; it will finish them
        sooner than a steal round-trip would).
        """
        remaining = self._assigned.get(victim, [])
        if len(remaining) < 2:
            return []
        keep = (len(remaining) + 1) // 2
        stolen = remaining[keep:]
        del remaining[keep:]
        for cell in stolen:
            self._attempts[cell] = self._attempts.get(cell, 0) + 1
        self._assigned.setdefault(thief, []).extend(stolen)
        return stolen

    def speculate(self, victim: str, thief: str, limit: int = 0) -> List[int]:
        """Duplicate the head of ``victim``'s unfinished cells onto ``thief``.

        Unlike :meth:`steal`, the victim *keeps* its cells: speculation
        targets stragglers (and dropped frames) — whichever copy
        finishes first wins and :meth:`complete` discards the loser
        everywhere.  Self-speculation (``victim == thief``) re-arms a
        worker whose ``work`` or ``result`` frame was lost on the wire:
        the cells are charged another attempt and returned for
        re-dispatch, but not duplicated in the assignment ledger.

        Cells that have exhausted their ``max_attempts`` budget are not
        speculated (they get no free extra lives).  ``limit`` caps the
        duplicated cells (0 = the frontier's chunk size).
        """
        limit = limit or self.chunk_size
        eligible = [c for c in self._assigned.get(victim, ())
                    if c not in self._done
                    and self._attempts.get(c, 0) < self.max_attempts]
        cells = eligible[:limit]
        for cell in cells:
            self._attempts[cell] = self._attempts.get(cell, 0) + 1
        if cells and victim != thief:
            self._assigned.setdefault(thief, []).extend(cells)
        return cells

    def steal_victim(self, thief: str) -> Optional[str]:
        """The most-loaded worker worth stealing from, or ``None``."""
        best: Optional[str] = None
        best_load = 1  # a single unfinished cell is not worth stealing
        for worker, remaining in self._assigned.items():
            if worker != thief and len(remaining) > best_load:
                best, best_load = worker, len(remaining)
        return best

    # -- progress ----------------------------------------------------------
    def complete(self, worker: Optional[str], cell: int) -> bool:
        """Record ``cell`` as finished; ``True`` if it was newly done.

        Duplicate completions are expected and harmless: a steal can
        race a victim that already started the stolen cell, and the
        deterministic engine makes both results byte-identical.
        """
        if cell in self._done:
            self._discard(worker, cell)
            return False
        self._done.add(cell)
        self._discard(worker, cell)
        return True

    def _discard(self, worker: Optional[str], cell: int) -> None:
        # Speculation can leave copies of one cell in *several* workers'
        # assignments (and a steal race in another worker's), so every
        # list is swept — a stale copy left behind would count as
        # unfinished work forever.
        for remaining in self._assigned.values():
            while cell in remaining:
                remaining.remove(cell)

    def fail_worker(self, worker: str) -> List[int]:
        """Requeue a dead worker's unfinished cells; return them.

        Raises :class:`SimulationError` when any cell has exhausted its
        ``max_attempts`` dispatch budget.
        """
        remaining = [c for c in self._assigned.pop(worker, []) if c not in self._done]
        # A cell is only truly out of lives when no speculative copy of
        # it is still in flight on a surviving worker.
        exhausted = [c for c in remaining
                     if self._attempts.get(c, 0) >= self.max_attempts
                     and not any(c in cells for cells in self._assigned.values())]
        remaining = [c for c in remaining
                     if not any(c in cells for cells in self._assigned.values())]
        if exhausted:
            raise SimulationError(
                f"grid cells {exhausted[:5]}{'...' if len(exhausted) > 5 else ''} "
                f"died with {self.max_attempts} workers in a row "
                f"(max_attempts={self.max_attempts}); giving up")
        # Front of the queue: requeued cells are the oldest work in
        # flight, and the next idle worker should pick them up first.
        for start in range(len(remaining), 0, -self.chunk_size):
            self._queue.appendleft(remaining[max(0, start - self.chunk_size):start])
        return remaining

    def remaining_for(self, worker: str) -> int:
        """Unfinished cells currently assigned to ``worker``."""
        return len(self._assigned.get(worker, ()))

    def assigned_cells(self, worker: str) -> List[int]:
        """Snapshot of the cells currently assigned to ``worker``."""
        return list(self._assigned.get(worker, ()))

    def workers_with_assignments(self) -> List[str]:
        """Workers currently holding at least one unfinished cell."""
        return [w for w, remaining in self._assigned.items() if remaining]

    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def is_done(self) -> bool:
        return len(self._done) >= self.total

    @property
    def has_queued(self) -> bool:
        return bool(self._queue)

    @property
    def total_dispatches(self) -> int:
        """Attempts charged across all cells (dispatches + requeues +
        speculations); ``total_dispatches - total`` bounds the redundant
        work a faulty run caused — the chaos benchmark's key metric."""
        return sum(self._attempts.values())
