"""End-to-end tests of the distributed sweep fabric.

Covers the fabric's contract: byte-identical JSONL against every other
execution mode, survival of a SIGKILLed worker mid-sweep, shared-cache
publishing (warm re-runs do zero simulations), work stealing + heartbeat
rescue of a silent worker, and clean failure on engine errors.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.distributed.protocol import FrameStream
from repro.distributed.scheduler import SweepScheduler
from repro.distributed.worker import run_worker
from repro.experiments.runner import SweepRunner, intern_jobs, run_job
from repro.experiments.spec import SweepSpec


def small_spec(**overrides):
    base = dict(
        workloads=["microbench"],
        managers=["ideal", "nexus#2"],
        core_counts=[1, 2],
        seeds=(1, 2),
        scale=0.05,
    )
    base.update(overrides)
    return SweepSpec(**base)


def wide_spec(seeds, scale=0.01):
    return SweepSpec(
        workloads=["microbench"],
        managers=["ideal", "nanos"],
        core_counts=[1, 2, 4, 8],
        seeds=tuple(range(seeds)),
        scale=scale,
    )


def run_in_thread(runner, spec, jsonl_path):
    """Start ``runner.run`` in a thread; return (thread, box['outcome'])."""
    box = {}

    def target():
        box["outcome"] = runner.run(spec, jsonl_path=jsonl_path)

    thread = threading.Thread(target=target)
    thread.start()
    return thread, box


def wait_for_scheduler(runner, thread, timeout=30.0):
    """Block until the runner has materialised its scheduler (or the
    sweep thread exited).  This is the only spin in the file — the
    scheduler object itself does not exist yet, so there is nothing to
    wait on; every later wait is event-driven via
    :meth:`SweepScheduler.wait_until`."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if runner.last_scheduler is not None or not thread.is_alive():
            return runner.last_scheduler
        time.sleep(0.005)
    return runner.last_scheduler


class TestByteIdentity:
    def test_two_worker_sweep_matches_serial(self, tmp_path):
        spec = small_spec()
        serial = SweepRunner().run(spec, jsonl_path=tmp_path / "serial.jsonl")
        runner = SweepRunner(transport="sockets", workers=2)
        dist = runner.run(spec, jsonl_path=tmp_path / "dist.jsonl")
        assert dist.executed == serial.executed == 8
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "dist.jsonl").read_bytes()
        assert runner.last_scheduler is not None
        assert runner.last_scheduler.results_received == 8

    def test_batch_lane_workers_match_serial(self, tmp_path):
        spec = small_spec()
        SweepRunner().run(spec, jsonl_path=tmp_path / "serial.jsonl")
        SweepRunner(transport="sockets", workers=2, batch_lanes=4).run(
            spec, jsonl_path=tmp_path / "lanes.jsonl")
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "lanes.jsonl").read_bytes()


class TestSharedStore:
    def test_workers_publish_into_the_shared_cache(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "store"
        cold = SweepRunner(transport="sockets", workers=2, cache_dir=store).run(spec)
        assert cold.executed == 8 and cold.cache_hits == 0
        # A plain serial runner over the same store simulates nothing:
        # every cell was published by a socket worker.
        warm = SweepRunner(cache_dir=store).run(spec)
        assert warm.executed == 0 and warm.cache_hits == 8
        assert warm.jsonl_lines() == cold.jsonl_lines()

    def test_fully_warm_distributed_run_spawns_no_scheduler(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "store"
        SweepRunner(cache_dir=store).run(spec)
        runner = SweepRunner(transport="sockets", workers=4, cache_dir=store)
        warm = runner.run(spec)
        assert warm.executed == 0 and warm.cache_hits == 8
        assert runner.last_scheduler is None  # no sockets, no processes


class TestFaultTolerance:
    def kill_one_worker_mid_sweep(self, runner, thread, total, after):
        """SIGKILL the first local worker once ``after`` results landed."""
        sched = wait_for_scheduler(runner, thread, timeout=120)
        assert sched is not None, "sweep finished before a scheduler appeared"
        assert sched.wait_until(
            lambda: (bool(sched.processes) and sched.results_received >= after)
            or not thread.is_alive(),
            timeout=120)
        seen = sched.results_received
        assert thread.is_alive() and seen < total, \
            f"sweep finished ({seen}/{total}) before the kill could land"
        os.kill(sched.processes[0].pid, signal.SIGKILL)
        return seen

    def test_sigkill_mid_sweep_loses_nothing(self, tmp_path):
        spec = wide_spec(seeds=75, scale=0.02)  # 600 cells
        serial = SweepRunner().run(spec, jsonl_path=tmp_path / "serial.jsonl")
        assert serial.executed == 600
        runner = SweepRunner(transport="sockets", workers=4)
        thread, box = run_in_thread(runner, spec, tmp_path / "dist.jsonl")
        self.kill_one_worker_mid_sweep(runner, thread, total=600, after=48)
        thread.join(timeout=180)
        assert not thread.is_alive()
        assert box["outcome"].executed == 600
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "dist.jsonl").read_bytes()

    def test_10k_cell_acceptance(self, tmp_path, monkeypatch):
        """The headline contract: a 10k-cell sweep across 4 workers is
        byte-identical to ``n_jobs=1``, survives a SIGKILLed worker
        mid-sweep, and a warm re-run over the shared store performs zero
        ``Machine.run`` calls."""
        spec = wide_spec(seeds=1250)  # 1250 seeds x 2 managers x 4 core counts
        assert len(list(spec.points())) == 10_000
        serial = SweepRunner().run(spec, jsonl_path=tmp_path / "serial.jsonl")
        assert serial.executed == 10_000

        store = tmp_path / "store"
        runner = SweepRunner(transport="sockets", workers=4, cache_dir=store)
        thread, box = run_in_thread(runner, spec, tmp_path / "dist.jsonl")
        self.kill_one_worker_mid_sweep(runner, thread, total=10_000, after=500)
        thread.join(timeout=300)
        assert not thread.is_alive()
        assert box["outcome"].executed == 10_000
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "dist.jsonl").read_bytes()

        # Warm re-run: the shared store answers everything; the engine
        # must never run (and no worker fleet is even spawned).
        from repro.system.machine import Machine

        def forbidden(self, *args, **kwargs):
            raise AssertionError("Machine.run called during a warm re-run")

        monkeypatch.setattr(Machine, "run", forbidden)
        warm_runner = SweepRunner(transport="sockets", workers=4, cache_dir=store)
        warm = warm_runner.run(spec, jsonl_path=tmp_path / "warm.jsonl")
        assert warm.executed == 0 and warm.cache_hits == 10_000
        assert warm_runner.last_scheduler is None
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / "warm.jsonl").read_bytes()


class TestSchedulerDirect:
    """Drive SweepScheduler against in-thread / hand-rolled workers."""

    def start(self, scheduler):
        box = {}

        def target():
            try:
                box["pairs"] = scheduler.run()
            except SimulationError as exc:
                box["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        assert scheduler.wait_until(
            lambda: scheduler.address is not None or not thread.is_alive())
        return thread, box

    def test_external_worker_over_a_real_socket(self):
        pending = list(enumerate(small_spec().points()))
        jobs, table = intern_jobs(pending)
        scheduler = SweepScheduler(jobs, table, workers=0, external_workers=1,
                                   timeout=60)
        thread, box = self.start(scheduler)
        code = run_worker(*scheduler.address, worker_id="ext-0")
        thread.join(timeout=60)
        assert code == 0  # clean shutdown frame
        expected = [run_job((index, point, None)) for index, point in pending]
        assert box["pairs"] == expected

    def test_silent_worker_is_expired_and_its_cells_rescued(self):
        """A worker that grabs a chunk and goes silent: stealing drains
        it down to one cell, then the heartbeat timeout reclaims the
        rest — no cell is lost, the sweep completes."""
        # Tiny cells (~10 ms each): the real worker's result frames are
        # its life signs, so per-cell time must stay far below the
        # expiry deadline even on a heavily loaded host.
        pending = list(enumerate(small_spec(scale=0.01).points()))
        jobs, table = intern_jobs(pending)
        scheduler = SweepScheduler(jobs, table, workers=0, external_workers=2,
                                   chunk_size=4, heartbeat_timeout=2.0,
                                   timeout=60)
        thread, box = self.start(scheduler)
        sock = socket.create_connection(scheduler.address)
        stream = FrameStream(sock)
        try:
            stream.send({"type": "hello", "worker_id": "silent"})
            setup = stream.recv(timeout=10)
            assert setup["type"] == "setup"
            stream.send({"type": "need_work"})
            assert scheduler.wait_until(
                lambda: scheduler.frontier.remaining_for("silent") > 0)
            code = run_worker(*scheduler.address, worker_id="real")
            thread.join(timeout=60)
            assert code == 0
            assert "error" not in box
            assert [index for index, _ in box["pairs"]] == \
                [index for index, _ in pending]
            # The silent worker was expired and forgotten, and every one
            # of its cells was completed by the real worker.
            assert scheduler.monitor.last_seen("silent") is None
            assert scheduler.frontier.remaining_for("silent") == 0
        finally:
            stream.close()
            thread.join(timeout=10)

    def test_engine_error_frame_fails_the_sweep(self):
        pending = list(enumerate(small_spec().points()))
        jobs, table = intern_jobs(pending)
        scheduler = SweepScheduler(jobs, table, workers=0, external_workers=1,
                                   timeout=30)
        thread, box = self.start(scheduler)
        sock = socket.create_connection(scheduler.address)
        stream = FrameStream(sock)
        try:
            stream.send({"type": "hello", "worker_id": "broken"})
            assert stream.recv(timeout=10)["type"] == "setup"
            stream.send({"type": "error", "cells": [0],
                         "message": "SimulationError: boom"})
            thread.join(timeout=30)
            assert "pairs" not in box
            assert "failed on cells" in str(box["error"])
        finally:
            stream.close()

    def test_scheduler_validation(self):
        with pytest.raises(SimulationError, match="at least one worker"):
            SweepScheduler([(0, None, None)], workers=0, external_workers=0)
        with pytest.raises(SimulationError):
            SweepScheduler([], workers=-1)
        assert SweepScheduler([], workers=0).run() == []  # empty grid: no-op


class TestRunnerConfig:
    def test_transport_is_validated(self):
        with pytest.raises(ConfigurationError, match="transport"):
            SweepRunner(transport="carrier-pigeon")

    def test_sockets_transport_needs_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            SweepRunner(transport="sockets")
        SweepRunner(transport="sockets", workers=1)
        SweepRunner(transport="sockets", worker_hosts=["nodeA"])

    def test_bad_scheduler_bind_is_rejected(self):
        spec = small_spec()
        runner = SweepRunner(transport="sockets", workers=1,
                             scheduler_bind="no-port-here")
        with pytest.raises(ConfigurationError, match="host:port"):
            runner.run(spec)
