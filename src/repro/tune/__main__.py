"""Entry point for ``python -m repro.tune``."""

import sys

from repro.tune.cli import main

if __name__ == "__main__":
    sys.exit(main())
