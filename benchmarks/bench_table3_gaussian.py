"""Table III — Gaussian-elimination task counts and granularity.

Regenerates the table of task counts and average task weights for the
250/500/1000/3000 matrices and checks the closed-form formulas (and the
generated trace for the smaller sizes) against the paper's numbers.
"""

import pytest

from repro.analysis.tables import table3_report
from repro.workloads.gaussian import gaussian_avg_flops, gaussian_task_count, generate_gaussian_elimination

#: Paper Table III rows: matrix -> (# tasks, avg FLOPs, avg µs).
PAPER_TABLE3 = {
    250: (31374, 167, 0.084),
    500: (125249, 334, 0.167),
    1000: (500499, 667, 0.334),
    3000: (4501499, 2012, 1.006),
}


def test_table3_gaussian_task_counts(benchmark, report_recorder):
    report = benchmark.pedantic(table3_report, rounds=1, iterations=1)
    report_recorder("table3_gaussian", report["text"])
    for matrix, (tasks, flops, avg_us) in PAPER_TABLE3.items():
        row = report["data"][matrix]
        assert row["tasks"] == tasks
        assert row["avg_flops"] == pytest.approx(flops, rel=0.01)
        assert row["avg_us"] == pytest.approx(avg_us, rel=0.01)


def test_table3_generated_trace_matches_formulas(benchmark):
    """Generate the 250x250 trace and verify it against the formulas."""
    trace = benchmark.pedantic(
        generate_gaussian_elimination, kwargs={"matrix_size": 250}, rounds=1, iterations=1
    )
    assert trace.num_tasks == gaussian_task_count(250)
    assert trace.avg_task_us == pytest.approx(gaussian_avg_flops(250) / 2000.0, rel=0.01)
