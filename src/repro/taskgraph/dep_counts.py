"""Dependence-counts table.

Every in-flight task has a dependence count: the number of addresses it
is still waiting on.  In Nexus# the count is assembled by the Dependence
Counts Arbiter from the per-task-graph partial counts (the *Dep. Counts
Buffers* and *Sim. Tasks Dep. Counts Buffer* of Figure 2) and stored in
the global *Dep. Counts Table*; in Nexus++ a single table holds it
directly.  This module implements the table itself; the arbiter timing
lives with the manager models.

The table is a plain ``task_id -> pending`` integer dict: one register,
one decrement per resolved dependence and one removal run per task on
the simulation hot path, so the per-entry record object the pre-compiled
engine allocated is gone.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import SimulationError


class DependenceCountsTable:
    """Tracks the outstanding dependence count of every in-flight task."""

    __slots__ = ("name", "_pending", "peak_entries")

    def __init__(self, name: str = "dep-counts") -> None:
        self.name = name
        self._pending: Dict[int, int] = {}
        self.peak_entries = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._pending

    def register(self, task_id: int, pending: int) -> None:
        """Create the entry for a newly inserted task."""
        entries = self._pending
        if task_id in entries:
            raise SimulationError(f"{self.name}: task {task_id} registered twice")
        if pending < 0:
            raise SimulationError(
                f"{self.name}: negative dependence count {pending} for task {task_id}"
            )
        entries[task_id] = pending
        if len(entries) > self.peak_entries:
            self.peak_entries = len(entries)

    def pending(self, task_id: int) -> int:
        """Outstanding dependence count of ``task_id``."""
        count = self._pending.get(task_id)
        if count is None:
            raise SimulationError(f"{self.name}: task {task_id} is not in flight")
        return count

    def decrement(self, task_id: int, amount: int = 1) -> bool:
        """Decrease the count of ``task_id``; return ``True`` when it hits zero."""
        entries = self._pending
        count = entries.get(task_id)
        if count is None:
            raise SimulationError(f"{self.name}: decrement for unknown task {task_id}")
        if amount < 0:
            raise SimulationError(f"{self.name}: negative decrement {amount}")
        count -= amount
        if count < 0:
            raise SimulationError(
                f"{self.name}: dependence count of task {task_id} went negative ({count})"
            )
        entries[task_id] = count
        return count == 0

    def remove(self, task_id: int) -> None:
        """Delete the entry of a finished task."""
        if self._pending.pop(task_id, None) is None:
            raise SimulationError(f"{self.name}: removing unknown task {task_id}")

    def ready_tasks(self) -> list[int]:
        """Ids of in-flight tasks whose count is currently zero."""
        return [t for t, pending in self._pending.items() if pending == 0]

    def reset(self) -> None:
        self._pending.clear()
        self.peak_entries = 0
