"""The sweep execution engine.

:class:`SweepRunner` takes a declarative :class:`~repro.experiments.spec.
SweepSpec`, consults the content-addressed :class:`~repro.experiments.
cache.ResultCache`, fans the remaining grid cells out across
``multiprocessing`` workers (``n_jobs``; the default of 1 runs serially
in-process), and streams the finished rows to JSONL.

Determinism contract
--------------------
The output is a pure function of the spec:

* grid cells are enumerated in the deterministic order of
  :meth:`SweepSpec.points` and results are re-ordered to it after the
  (unordered) parallel execution,
* every result crosses process/cache/socket boundaries as its JSON
  document, so a cold serial run, a cold parallel run, a batched serial
  run (``batch_lanes``, via the vectorized :mod:`repro.sim.batch`
  backend), a distributed run (``transport="sockets"``, via the
  :mod:`repro.distributed` fabric) and a warm cached run all emit
  byte-identical JSONL rows.
"""

from __future__ import annotations

import dataclasses
import gzip
import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError, SimulationError
from repro.experiments.cache import ResultCache
from repro.experiments.spec import RunPoint, SweepSpec, WorkloadSpec
from repro.system.results import MachineResult
from repro.trace.serialization import canonical_json_line, result_from_json, result_to_json

#: Per-worker table of inline workloads, installed by the pool initializer
#: (or the socket worker's setup frame) so a large trace crosses the
#: process boundary once per worker rather than once per grid cell.
_WORKER_WORKLOADS: List[WorkloadSpec] = []


def install_workload_table(workloads: List[WorkloadSpec]) -> None:
    """Install this process's interned workload table (see :func:`intern_jobs`)."""
    global _WORKER_WORKLOADS
    _WORKER_WORKLOADS = workloads


#: Backwards-compatible multiprocessing initializer name.
_init_worker = install_workload_table


def resolve_job(job: Tuple[int, RunPoint, Optional[int]]) -> Tuple[int, RunPoint]:
    """Rehydrate an interned job into its ``(index, point)`` pair.

    ``job`` is ``(index, point, workload_ref)``; a non-``None`` ref points
    into the process's interned workload table (see
    :func:`install_workload_table`).
    """
    index, point, workload_ref = job
    if workload_ref is not None:
        point = dataclasses.replace(point, workload=_WORKER_WORKLOADS[workload_ref])
    return index, point


def run_job(job: Tuple[int, RunPoint, Optional[int]]) -> Tuple[int, Dict[str, Any]]:
    """Worker entry point: run one grid cell, return its result document.

    Module-level (not a closure) so it pickles under every start method.
    """
    index, point = resolve_job(job)
    return index, result_to_json(point.run())


#: Backwards-compatible multiprocessing job-function name.
_run_point_job = run_job


def intern_jobs(
    pending: List[Tuple[int, RunPoint]],
) -> Tuple[List[Tuple[int, RunPoint, Optional[int]]], List[WorkloadSpec]]:
    """Intern inline-trace workloads out of ``pending`` grid cells.

    Returns ``(jobs, table)``: each job is ``(index, point, ref)`` where
    a non-``None`` ref replaces the point's (stripped) workload with
    ``table[ref]`` on the executing side — so each unique inline trace
    crosses a process/socket boundary once, not once per grid cell.
    Named workloads pass through untouched (they regenerate in place).
    """
    table: List[WorkloadSpec] = []
    refs: Dict[int, int] = {}
    jobs: List[Tuple[int, RunPoint, Optional[int]]] = []
    for index, point in pending:
        if point.workload.trace is None:
            jobs.append((index, point, None))
            continue
        ref = refs.get(id(point.workload))
        if ref is None:
            ref = len(table)
            refs[id(point.workload)] = ref
            table.append(point.workload)
        stripped = dataclasses.replace(point, workload=WorkloadSpec(name=point.workload.name))
        jobs.append((index, stripped, ref))
    return jobs, table


def execute_lane_block(
    block: List[Tuple[int, RunPoint]],
) -> List[Tuple[int, Dict[str, Any]]]:
    """Advance a block of materialised static cells in lockstep.

    The block runs through the vectorized batch backend
    (:func:`repro.sim.batch.run_lanes`), which replicates the scalar
    engine exactly and falls back to it per-lane for configurations its
    kernels do not cover — results are byte-identical to per-cell
    :meth:`RunPoint.run` calls either way.  Cells sharing a workload
    share one structural compilation (``WorkloadSpec.resolve`` memoises
    named traces per process).
    """
    from repro.sim.batch import LaneSpec, run_lanes
    from repro.system.machine import MachineConfig

    lanes = [
        LaneSpec(
            trace=point.workload.resolve(),
            manager=point.factory(),
            config=MachineConfig(
                num_cores=point.cores,
                validate=point.validate,
                keep_schedule=point.keep_schedule,
                scheduler=point.scheduler,
                topology=point.topology,
            ),
        )
        for _, point in block
    ]
    return [
        (index, result_to_json(result))
        for (index, _), result in zip(block, run_lanes(lanes))
    ]


def resolve_worker_count(
    value: Union[int, str], *, flag: str = "n_jobs", minimum: int = 1
) -> int:
    """Resolve a job/worker-count setting to a concrete integer.

    Accepts an ``int``, a decimal string, or ``"auto"`` (=
    ``os.cpu_count()``); anything else — including values below
    ``minimum`` — raises :class:`~repro.common.errors.
    ConfigurationError`, so both the CLI flags and the
    :class:`SweepRunner` constructor reject bad counts the same way.
    """
    if isinstance(value, str):
        if value.strip().lower() == "auto":
            value = os.cpu_count() or 1
        else:
            try:
                value = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"{flag} must be a positive integer or 'auto', got {value!r}"
                ) from None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(
            f"{flag} must be a positive integer or 'auto', got {value!r}")
    if value < minimum:
        raise ConfigurationError(f"{flag} must be >= {minimum}, got {value}")
    return value


def _pick_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, shares generated traces); fall back cleanly."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class SweepOutcome:
    """Everything a finished sweep produced."""

    spec: SweepSpec
    points: List[RunPoint]
    rows: List[Dict[str, Any]]
    cache_hits: int = 0
    executed: int = 0
    jsonl_path: Optional[Path] = None
    _results: Optional[List[MachineResult]] = field(default=None, repr=False)

    @property
    def results(self) -> List[MachineResult]:
        """The per-point :class:`MachineResult`s, in grid order."""
        if self._results is None:
            self._results = [result_from_json(row["result"]) for row in self.rows]
        return self._results

    def jsonl_lines(self) -> List[str]:
        """Canonical JSONL rows (no trailing newlines), in grid order."""
        return [canonical_json_line(row) for row in self.rows]

    def study(self, workload_name: str) -> "ScalabilityStudy":  # noqa: F821
        """Bridge one workload's results into the analysis layer."""
        return self.studies()[workload_name]

    def studies(self) -> Dict[str, "ScalabilityStudy"]:  # noqa: F821
        """Group results into per-workload :class:`ScalabilityStudy` objects.

        Every effective workload and every spec manager gets a study/curve
        — empty when ``max_cores`` filtered all of its points out —
        matching what a hand-rolled sweep over the same grid would report.
        """
        from repro.analysis.speedup import ScalabilityCurve, ScalabilityStudy

        spec = self.spec
        # Mixed scheduler/topology axes expand every manager into one
        # curve per (manager, scheduler, topology) combination — exactly
        # mirroring curve_display_key(), which labels the rows.
        multi_sched = len(spec.schedulers) > 1
        multi_topo = len(spec.topologies) > 1
        manager_names = [
            curve_display_key(name, scheduler, topology, multi_sched, multi_topo)
            for name, _ in spec.managers
            for scheduler in spec.schedulers
            for topology in spec.topologies
        ]
        # One key map over the full grid, so fully-filtered workloads get
        # the same keys as the ones that produced rows.
        effective_docs = [workload.describe() for workload in spec.effective_workloads()]
        key_map = workload_key_map(effective_docs)
        studies = rows_to_studies(
            self.rows,
            manager_names=manager_names,
            core_order=spec.core_counts,
            key_map=key_map,
        )
        for doc in effective_docs:
            key = key_map[canonical_json_line(doc)]
            if key in studies:
                continue
            study = ScalabilityStudy(trace_name=key, core_counts=spec.core_counts)
            for manager_name in manager_names:
                study.curves[manager_name] = ScalabilityCurve(
                    manager_name=manager_name, trace_name=key,
                    core_counts=(), speedups=(), makespans_us=(),
                )
            studies[key] = study
        return studies


class SweepRunner:
    """Run sweep grids, incrementally and (optionally) in parallel.

    Parameters
    ----------
    n_jobs:
        Number of worker processes.  1 (the default) runs serially in the
        calling process — fully deterministic and easiest to debug; higher
        values fan grid cells out with ``multiprocessing`` (the output is
        byte-identical either way, see the module docstring).
    cache:
        A :class:`ResultCache`, or ``None`` to always simulate.
    cache_dir:
        Convenience: directory to open a :class:`ResultCache` in (ignored
        when ``cache`` is given).
    batch_lanes:
        Number of grid cells advanced together through the vectorized
        batch backend (:func:`repro.sim.batch.run_lanes`) on the serial
        path.  1 (the default) runs every cell through the scalar engine;
        higher values group non-stream, non-dynamic cells into lane
        batches of this size, in grid order.  This is an *execution*
        option like ``n_jobs`` — results (and therefore cache keys and
        JSONL rows) are byte-identical either way, because the batch
        backend replicates the scalar engine exactly and falls back to
        it per-lane for configurations its kernels do not cover.
        Ignored when ``n_jobs > 1`` (worker processes run cells
        individually); socket workers apply it to each dispatched chunk.
    transport:
        ``"local"`` (the default) executes in-process / via
        ``multiprocessing``; ``"sockets"`` runs the distributed sweep
        fabric instead — a :class:`~repro.distributed.scheduler.
        SweepScheduler` owning the frontier and TCP worker processes
        pulling locality-aware chunks, with work stealing, heartbeats
        and bounded requeue (see :mod:`repro.distributed`).  Output is
        byte-identical to every other execution mode.
    workers:
        Local socket-worker processes to spawn (``transport="sockets"``
        only).  ``"auto"`` uses ``os.cpu_count()``.
    worker_hosts:
        Names of remote hosts expected to contribute workers (started
        by hand with ``python -m repro.distributed.worker --connect
        HOST:PORT``); the scheduler accepts one connection per listed
        host on top of the local ``workers``.
    scheduler_bind:
        ``host:port`` the fabric scheduler listens on (default
        ``127.0.0.1:0`` — loopback, ephemeral port; bind a routable
        address when ``worker_hosts`` are involved).
    heartbeat_interval / heartbeat_timeout:
        Worker life-sign cadence and the silence threshold after which
        the scheduler requeues a worker's cells.
    chaos:
        Deterministic fault injection for the fabric
        (``transport="sockets"`` only): a
        :class:`~repro.chaos.plan.FaultPlan`, or the compact string
        form ``"profile:seed"`` (e.g. ``"soak:2015"``).  When unset,
        the ``REPRO_CHAOS`` environment knob is consulted — that is how
        the CI soak job arms an ordinary sweep invocation.  Results
        must be byte-identical with or without chaos; only timing,
        retries and the fault timeline differ.
    """

    def __init__(
        self,
        n_jobs: Union[int, str] = 1,
        *,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        batch_lanes: int = 1,
        transport: str = "local",
        workers: Union[int, str, None] = None,
        worker_hosts: Sequence[str] = (),
        scheduler_bind: str = "127.0.0.1:0",
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        chaos: Union[str, Any, None] = None,
    ) -> None:
        self.n_jobs = resolve_worker_count(n_jobs, flag="n_jobs")
        if batch_lanes < 1:
            raise ConfigurationError(f"batch_lanes must be >= 1, got {batch_lanes}")
        if transport not in ("local", "sockets"):
            raise ConfigurationError(
                f"transport must be 'local' or 'sockets', got {transport!r}")
        self.transport = transport
        self.worker_hosts = tuple(worker_hosts)
        if workers is None:
            self.workers = 0
        else:
            self.workers = resolve_worker_count(workers, flag="workers", minimum=0)
        if transport == "sockets" and self.workers + len(self.worker_hosts) < 1:
            raise ConfigurationError(
                "transport='sockets' needs workers >= 1 or at least one worker host")
        self.scheduler_bind = scheduler_bind
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.batch_lanes = batch_lanes
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        self.cache = cache
        from repro.chaos.plan import parse_chaos, plan_from_env

        self.chaos = parse_chaos(chaos) if chaos is not None else plan_from_env()
        #: The most recent fabric scheduler (``transport="sockets"``
        #: only) — introspection surface for tests and progress tooling.
        self.last_scheduler = None
        self._current_spec: Optional[SweepSpec] = None

    # -- execution ---------------------------------------------------------
    def run(
        self,
        spec: SweepSpec,
        *,
        jsonl_path: Optional[Union[str, Path]] = None,
    ) -> SweepOutcome:
        """Execute ``spec`` and return the collected results.

        When ``jsonl_path`` is given, one canonical-JSON row per grid cell
        is streamed to it (a ``.gz`` suffix selects gzip compression).
        """
        # An empty grid (everything filtered by max_cores) is legitimate:
        # the outcome simply reports zero points and empty curves.
        points = list(spec.points())
        # The journal (crash-resumable sockets transport) is keyed on
        # the spec's content hash, so _execute_sockets needs the spec.
        self._current_spec = spec
        documents: List[Optional[Dict[str, Any]]] = [None] * len(points)
        pending: List[Tuple[int, RunPoint]] = []

        cache_hits = 0
        if self.cache is not None:
            # Points with opaque (non-describable) factories bypass the
            # cache entirely: their keys cannot tell two configurations
            # apart, and a collision would silently serve stale science.
            keys = [point.cache_key() if point.cacheable else None for point in points]
            for index, (point, key) in enumerate(zip(points, keys)):
                hit = self.cache.get(key) if key is not None else None
                if hit is not None:
                    documents[index] = hit
                    cache_hits += 1
                else:
                    pending.append((index, point))
        else:
            keys = []
            pending = list(enumerate(points))

        executed = len(pending)
        for index, document in self._execute(pending):
            documents[index] = document
            if self.cache is not None and keys[index] is not None:
                self.cache.put(keys[index], document)

        missing = [i for i, document in enumerate(documents) if document is None]
        if missing:  # pragma: no cover - defensive
            raise SimulationError(f"sweep lost results for {len(missing)} grid cells")

        rows = [
            {"point": point.describe(), "result": document}
            for point, document in zip(points, documents)
        ]
        outcome = SweepOutcome(
            spec=spec,
            points=points,
            rows=rows,
            cache_hits=cache_hits,
            executed=executed,
        )
        if jsonl_path is not None:
            outcome.jsonl_path = write_jsonl(rows, jsonl_path)
        return outcome

    def _execute(
        self, pending: List[Tuple[int, RunPoint]]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        if not pending:
            return []
        if self.transport == "sockets":
            return self._execute_sockets(pending)
        if self.n_jobs == 1 or len(pending) == 1:
            if self.batch_lanes > 1 and len(pending) > 1:
                return self._execute_batched(pending)
            return [run_job((index, point, None)) for index, point in pending]
        self._check_factories_picklable(pending)
        # Intern inline-trace workloads: ship each unique trace to workers
        # once via the pool initializer instead of once per grid cell.
        jobs, table = intern_jobs(pending)
        context = _pick_context()
        processes = min(self.n_jobs, len(pending))
        with context.Pool(processes=processes, initializer=_init_worker, initargs=(table,)) as pool:
            return list(pool.imap_unordered(_run_point_job, jobs, chunksize=1))

    def _execute_batched(
        self, pending: List[Tuple[int, RunPoint]]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Serial execution through the vectorized batch backend.

        Materialised (non-stream, non-dynamic) cells are grouped into
        lane batches of ``batch_lanes`` in grid order and advanced in
        lockstep (:func:`execute_lane_block`); everything else runs
        through the scalar path exactly as before.
        """
        out: List[Tuple[int, Dict[str, Any]]] = []
        batchable: List[Tuple[int, RunPoint]] = []
        for index, point in pending:
            if point.stream or point.dynamic:
                out.append(run_job((index, point, None)))
            else:
                batchable.append((index, point))
        for start in range(0, len(batchable), self.batch_lanes):
            out.extend(execute_lane_block(batchable[start:start + self.batch_lanes]))
        return out

    def _execute_sockets(
        self, pending: List[Tuple[int, RunPoint]]
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Fan the pending cells out over the distributed sweep fabric.

        Builds the same interned job table as the ``multiprocessing``
        path, then hands it to a :class:`~repro.distributed.scheduler.
        SweepScheduler` that spawns/serves socket workers.  Cells are
        grouped for locality by workload identity, so one worker replays
        many cells of one trace back-to-back.
        """
        from repro.distributed.scheduler import SweepScheduler

        self._check_factories_picklable(pending)
        jobs, table = intern_jobs(pending)
        # Locality keys from the *original* points (stripped inline
        # workloads all describe identically, which would merge distinct
        # traces into one locality run).
        groups = [
            canonical_json_line(point.workload.describe())
            for _, point in pending
        ]
        host, _, port = self.scheduler_bind.rpartition(":")
        if not host:
            raise ConfigurationError(
                f"scheduler_bind must be host:port, got {self.scheduler_bind!r}")
        try:
            port_number = int(port)
        except ValueError as exc:
            raise ConfigurationError(
                f"scheduler_bind must be host:port, got {self.scheduler_bind!r}"
            ) from exc
        cache_dir = str(self.cache.root) if self.cache is not None else None
        # Crash-resumable checkpoint: an append-only completions journal
        # next to the shared store, keyed by the spec's content hash —
        # a SIGKILLed scheduler restarted with the same spec replays it
        # and re-executes zero completed cells.
        journal = None
        if self.cache is not None and self._current_spec is not None:
            from repro.resilience.journal import FrontierJournal

            sweep_id = self._current_spec.spec_hash()
            journal = FrontierJournal.open(
                self.cache.root / "_journal" / f"{sweep_id}.jsonl", sweep_id)
        scheduler = SweepScheduler(
            jobs,
            table,
            groups=groups,
            workers=self.workers,
            external_workers=len(self.worker_hosts),
            host=host,
            port=port_number,
            batch_lanes=self.batch_lanes,
            cache_dir=cache_dir,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            chaos=self.chaos,
            journal=journal,
        )
        self.last_scheduler = scheduler
        try:
            results = scheduler.run()
        except BaseException:
            # Keep the journal: it is exactly what a rerun resumes from.
            if journal is not None:
                journal.close()
            raise
        if journal is not None:
            journal.discard()  # clean finish: the checkpoint has served
        return results

    @staticmethod
    def _check_factories_picklable(pending: List[Tuple[int, RunPoint]]) -> None:
        """Fail with a clear message before the pool chokes on a closure.

        ``ManagerFactory`` is any zero-argument callable, but parallel
        execution ships points to worker processes — a lambda/closure
        factory would otherwise surface as an inscrutable PicklingError
        from deep inside ``multiprocessing``.
        """
        checked = set()
        for _, point in pending:
            if id(point.factory) in checked:
                continue
            checked.add(id(point.factory))
            try:
                pickle.dumps(point.factory)
            except Exception as exc:
                raise ConfigurationError(
                    f"manager factory for {point.manager_name!r} is not picklable "
                    f"({exc}); parallel sweeps need module-level factories — use the "
                    "dataclass factories in repro.analysis.factories (or implement "
                    "__reduce__), or run with n_jobs=1"
                ) from exc


def curve_display_key(
    manager: str,
    scheduler: str,
    topology: str,
    multi_sched: bool,
    multi_topo: bool,
) -> str:
    """Display key of one speedup curve.

    THE labelling rule for sweep results with scheduler/topology axes,
    shared by :meth:`SweepOutcome.studies` and :func:`rows_to_studies`:
    the manager name is suffixed with exactly the axes that are actually
    swept (``Ideal [sjf]``, ``Ideal @biglittle:0.5``), so single-axis
    sweeps keep the familiar manager-only labels while mixed-axis sweeps
    never merge distinct configurations into one curve.
    """
    key = manager
    if multi_sched:
        key += f" [{scheduler}]"
    if multi_topo:
        key += f" @{topology}"
    return key


def workload_key_map(workload_docs: List[Dict[str, Any]]) -> Dict[str, str]:
    """Map each workload-describe document to a unique display key.

    This is THE grouping rule for sweep results — shared by
    :meth:`SweepOutcome.studies` and the CLI ``report`` command.  A
    workload is keyed by its name; when several distinct identities share
    a name, the key is suffixed with exactly the fields that differ
    (``#seed=…``, ``#scale=…``, a truncated inline digest), so distinct
    workloads never merge into one curve.
    """
    by_name: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for doc in workload_docs:
        identity = canonical_json_line(doc)
        by_name.setdefault(doc["name"], {})[identity] = doc
    key_map: Dict[str, str] = {}
    for name, unique in by_name.items():
        if len(unique) == 1:
            key_map[next(iter(unique))] = name
            continue
        fields = [
            field_name
            for field_name in ("seed", "scale", "depth", "max_tasks", "inline_digest")
            if len({canonical_json_line(doc.get(field_name)) for doc in unique.values()}) > 1
        ]
        for identity, doc in unique.items():
            parts = []
            for field_name in fields:
                value = doc.get(field_name)
                if field_name == "inline_digest" and isinstance(value, str):
                    value = value[:10]
                parts.append(f"{field_name}={value}")
            key_map[identity] = f"{name}#{','.join(parts)}"
    return key_map


def rows_to_studies(
    rows: List[Dict[str, Any]],
    *,
    manager_names: Optional[List[str]] = None,
    core_order: Optional[Tuple[int, ...]] = None,
    key_map: Optional[Dict[str, str]] = None,
) -> Dict[str, "ScalabilityStudy"]:  # noqa: F821
    """Group sweep result rows into per-workload scalability studies.

    * workloads are grouped by :func:`workload_key_map` (pass ``key_map``
      to reuse one computed from a superset, e.g. the full spec grid);
    * curves are keyed by :func:`curve_display_key` — the manager name,
      suffixed with the scheduler and/or topology when the rows actually
      sweep those axes;
    * curve columns follow ``core_order`` (the spec's axis) when given,
      ascending core counts otherwise — headers and values always align;
    * when ``manager_names`` is given, every listed curve key gets a curve
      (empty if all of its points were filtered), in that order.
    """
    from repro.analysis.speedup import ScalabilityCurve, ScalabilityStudy

    if key_map is None:
        key_map = workload_key_map([row["point"]["workload"] for row in rows])

    def key_for(workload: Dict[str, Any]) -> str:
        return key_map[canonical_json_line(workload)]

    if core_order is None:
        axis = tuple(sorted({int(row["point"]["cores"]) for row in rows}))
    else:
        axis = tuple(core_order)
    order = {cores: position for position, cores in enumerate(axis)}

    # Old JSONL rows (pre-axis result format) default to the paper's
    # fifo + homogeneous configuration.
    schedulers_seen = {row["point"].get("scheduler", "fifo") for row in rows}
    topologies_seen = {row["point"].get("topology", "homogeneous") for row in rows}
    multi_sched = len(schedulers_seen) > 1
    multi_topo = len(topologies_seen) > 1

    collected: Dict[Tuple[str, str], List[Tuple[int, MachineResult]]] = {}
    group_keys: List[str] = []
    managers_seen: Dict[str, List[str]] = {}
    for row in rows:
        point = row["point"]
        key = key_for(point["workload"])
        manager = curve_display_key(
            point["manager"],
            point.get("scheduler", "fifo"),
            point.get("topology", "homogeneous"),
            multi_sched,
            multi_topo,
        )
        if key not in managers_seen:
            managers_seen[key] = []
            group_keys.append(key)
        if manager not in managers_seen[key]:
            managers_seen[key].append(manager)
        collected.setdefault((key, manager), []).append(
            (int(point["cores"]), result_from_json(row["result"]))
        )

    studies: Dict[str, ScalabilityStudy] = {}
    for key in group_keys:
        study = ScalabilityStudy(trace_name=key, core_counts=axis)
        names = manager_names if manager_names is not None else managers_seen[key]
        for manager in names:
            runs = collected.get((key, manager), [])
            runs.sort(key=lambda item: (order.get(item[0], len(order)), item[0]))
            study.curves[manager] = ScalabilityCurve(
                manager_name=manager,
                trace_name=key,
                core_counts=tuple(cores for cores, _ in runs),
                speedups=tuple(result.speedup_vs_serial for _, result in runs),
                makespans_us=tuple(result.makespan_us for _, result in runs),
            )
        studies[key] = study
    return studies


def write_jsonl(rows: List[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write canonical-JSON ``rows`` to ``path``, one line each.

    A ``.gz`` suffix selects gzip compression, mirroring
    :func:`repro.trace.serialization.iter_jsonl` (and ``save_trace``).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="utf-8") as handle:
        for row in rows:
            handle.write(canonical_json_line(row))
            handle.write("\n")
    return path


def run_sweep(
    spec: SweepSpec,
    *,
    n_jobs: Union[int, str] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    jsonl_path: Optional[Union[str, Path]] = None,
    batch_lanes: int = 1,
    transport: str = "local",
    workers: Union[int, str, None] = None,
    worker_hosts: Sequence[str] = (),
) -> SweepOutcome:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        n_jobs=n_jobs, cache_dir=cache_dir, batch_lanes=batch_lanes,
        transport=transport, workers=workers, worker_hosts=worker_hosts)
    return runner.run(spec, jsonl_path=jsonl_path)
