#!/usr/bin/env python3
"""Config-autotuner benchmark: sweet-spot rediscovery, scheduler wins, warm re-runs.

Three sections, all over the :mod:`repro.tune` successive-halving driver:

* **sweet spot** — a 15-candidate Nexus# axis (task graphs {1, 2, 4, 6, 8}
  x table geometry {256x8, 64x4, 16x2}, flat 100 MHz so area is the only
  thing that varies) raced on the golden h264dec workloads under the
  ``makespan`` objective.  Gate: within the bounded cell budget the tuner
  must rediscover the paper's configuration — **Nexus# 6TG@100MHz** with
  the default 256x8 table geometry (the paper-default geometry compiles
  without a ``/SxW`` suffix, so the winning display carries none).
* **improve** — the paper's default config (``nexus#6`` + fifo) raced
  against alternative ready-queue schedulers on recursive task graphs
  (fib / recursive-sort static elaborations).  Gate: the tuner must find
  a non-default scheduler that beats fifo's full-fidelity score, again
  within a bounded budget.
* **warm re-run** — the identical sweet-spot search replayed against the
  cache the cold run populated.  Gate: **zero** simulations (every rung
  is answered by the content-addressed store) and the same winner.

Run with::

    PYTHONPATH=src python benchmarks/bench_tuning.py [--quick] [--check]

Writes ``BENCH_tuning.json`` (schema 1, repo root by default).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.runner import SweepRunner  # noqa: E402
from repro.tune.search import SuccessiveHalving, TuneResult  # noqa: E402
from repro.tune.space import SearchSpace, nexus_sharp_axis  # noqa: E402

BENCH_SEED = 2015

#: The paper's ZC706 configuration: 6 task-graph contexts, the default
#: 256-set x 8-way dependence tables (no geometry suffix on the display).
PAPER_SWEET_SPOT = "Nexus# 6TG@100MHz"

#: Scheduled-cell budgets handed to the driver (cache hits included, so
#: the bound is deterministic regardless of cache state).
SWEET_SPOT_BUDGET = {"full": 40, "quick": 20}
IMPROVE_BUDGET = 10

#: The Nexus# axis under search: every task-graph count Table I covers,
#: by three dependence-table geometries, pinned to a flat 100 MHz.
SWEET_SPOT_TASK_GRAPHS = (1, 2, 4, 6, 8)
SWEET_SPOT_GEOMETRIES = ("256x8", "64x4", "16x2")


def _sweet_spot_space(quick: bool) -> SearchSpace:
    axis = nexus_sharp_axis(SWEET_SPOT_TASK_GRAPHS, SWEET_SPOT_GEOMETRIES,
                            frequency_mhz=100.0)
    workloads = (("h264dec-2x2-10f",) if quick
                 else ("h264dec-1x1-10f", "h264dec-2x2-10f"))
    return SearchSpace(
        managers=axis,
        workloads=workloads,
        core_counts=(24,),
        seeds=(BENCH_SEED,),
        scale=0.15,
        name="bench-sweet-spot",
    )


def _improve_space() -> SearchSpace:
    # Recursive task graphs are where ready-queue policy matters: the
    # fib / recursive-sort elaborations hand the scheduler deep chains
    # of unequal subtrees, and locality-aware picking beats plain fifo.
    return SearchSpace(
        managers=("nexus#6",),
        workloads=("fib", "recursive-sort"),
        schedulers=("fifo", "sjf", "locality"),
        core_counts=(8,),
        seeds=(BENCH_SEED,),
        scale=1.0,
        name="bench-improve",
    )


def _frontier_rows(result: TuneResult) -> List[Dict[str, object]]:
    return [
        {
            "display": entry.candidate.display,
            "scheduler": entry.candidate.scheduler,
            "score": round(entry.score, 6),
            "metrics": {key: round(value, 6)
                        for key, value in entry.metrics.items()},
        }
        for entry in result.rungs[-1].frontier
    ]


def _run_search(space: SearchSpace, budget: int,
                cache_dir: Path) -> tuple[TuneResult, float]:
    runner = SweepRunner(cache_dir=cache_dir)
    driver = SuccessiveHalving(space, "makespan", budget=budget, runner=runner)
    start = time.perf_counter()
    result = driver.run()
    return result, time.perf_counter() - start


def run_sweet_spot_section(quick: bool, cache_dir: Path) -> Dict[str, object]:
    space = _sweet_spot_space(quick)
    budget = SWEET_SPOT_BUDGET["quick" if quick else "full"]
    result, elapsed = _run_search(space, budget, cache_dir)
    exhaustive = len(space.candidates()) * len(space.units()) * space.cells_per_unit
    best = result.best
    return {
        "space": space.describe(),
        "budget_cells": budget,
        "rungs": len(result.rungs),
        "cells": result.total_cells,
        "executed": result.total_executed,
        "cache_hits": result.total_cache_hits,
        "exhaustive_cells": exhaustive,
        "seconds": round(elapsed, 3),
        "budget_exhausted": result.budget_exhausted,
        "winner": best.candidate.display,
        "winner_score": round(best.score, 6),
        "final_frontier": _frontier_rows(result)[:5],
        "expected": PAPER_SWEET_SPOT,
        "meets_sweet_spot": (best.candidate.display == PAPER_SWEET_SPOT
                             and not result.budget_exhausted),
        "note": "15 Nexus# configs (TG x table geometry) at flat 100 MHz "
                "on golden h264dec traces; the paper-default 256x8 "
                "geometry carries no /SxW display suffix",
    }


def run_improve_section(cache_dir: Path) -> Dict[str, object]:
    space = _improve_space()
    result, elapsed = _run_search(space, IMPROVE_BUDGET, cache_dir)
    best = result.best
    frontier = _frontier_rows(result)
    default = next((row for row in frontier if row["scheduler"] == "fifo"),
                   None)
    improved = (default is not None
                and best.candidate.scheduler != "fifo"
                and best.score > float(default["score"]))
    improvement_pct = (
        (best.score / float(default["score"]) - 1.0) * 100.0
        if default is not None else 0.0)
    return {
        "space": space.describe(),
        "budget_cells": IMPROVE_BUDGET,
        "cells": result.total_cells,
        "executed": result.total_executed,
        "seconds": round(elapsed, 3),
        "budget_exhausted": result.budget_exhausted,
        "default_scheduler": "fifo",
        "default_score": None if default is None else default["score"],
        "winner_scheduler": best.candidate.scheduler,
        "winner_score": round(best.score, 6),
        "improvement_pct": round(improvement_pct, 3),
        "final_frontier": frontier,
        "meets_improvement": improved and not result.budget_exhausted,
        "note": "the fifo default must survive to the final rung so the "
                "win is measured at full fidelity",
    }


def run_warm_section(quick: bool, cache_dir: Path,
                     expected_winner: str) -> Dict[str, object]:
    space = _sweet_spot_space(quick)
    budget = SWEET_SPOT_BUDGET["quick" if quick else "full"]
    result, elapsed = _run_search(space, budget, cache_dir)
    return {
        "cells": result.total_cells,
        "executed": result.total_executed,
        "cache_hits": result.total_cache_hits,
        "seconds": round(elapsed, 3),
        "winner": result.best.candidate.display,
        "meets_zero_sim": (result.total_executed == 0
                           and result.best.candidate.display == expected_winner),
    }


def run_benchmark(quick: bool) -> Dict[str, object]:
    store = Path(tempfile.mkdtemp(prefix="bench-tuning-"))
    try:
        sweet_spot = run_sweet_spot_section(quick, store)
        warm = run_warm_section(quick, store,
                                expected_winner=str(sweet_spot["winner"]))
        improve = run_improve_section(store)
    finally:
        shutil.rmtree(store, ignore_errors=True)
    return {
        "benchmark": "tuning",
        "schema": 1,
        "config": {
            "quick": quick,
            "seed": BENCH_SEED,
            "objective": "makespan",
            "eta": 2,
        },
        "sweet_spot": sweet_spot,
        "improve": improve,
        "warm_rerun": warm,
        "meets_target": (sweet_spot["meets_sweet_spot"]
                         and improve["meets_improvement"]
                         and warm["meets_zero_sim"]),
    }


def check_report(report: Dict[str, object]) -> List[str]:
    """Return the list of gate violations in ``report`` (empty = pass)."""
    failures: List[str] = []
    sweet = report["sweet_spot"]
    if not sweet["meets_sweet_spot"]:  # type: ignore[index]
        failures.append(
            f"sweet-spot search picked {sweet['winner']!r} "  # type: ignore[index]
            f"(expected {sweet['expected']!r} within "  # type: ignore[index]
            f"{sweet['budget_cells']} cells)"  # type: ignore[index]
        )
    improve = report["improve"]
    if not improve["meets_improvement"]:  # type: ignore[index]
        failures.append(
            f"improve search did not beat the fifo default "
            f"(winner {improve['winner_scheduler']!r} score "  # type: ignore[index]
            f"{improve['winner_score']} vs {improve['default_score']})"  # type: ignore[index]
        )
    warm = report["warm_rerun"]
    if not warm["meets_zero_sim"]:  # type: ignore[index]
        failures.append(
            f"warm re-run executed {warm['executed']} cells "  # type: ignore[index]
            "(expected 0: every rung must be cache hits)"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single golden workload (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the sweet-spot, improvement "
                             "or warm-rerun gate fails")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_tuning.json"))
    args = parser.parse_args()

    report = run_benchmark(quick=args.quick)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")

    print(f"wrote {output}")
    sweet = report["sweet_spot"]
    print(
        f"sweet spot: {sweet['winner']} in {sweet['rungs']} rung(s), "
        f"{sweet['cells']} cells scheduled ({sweet['executed']} simulated, "
        f"{sweet['cache_hits']} cached; exhaustive grid "
        f"{sweet['exhaustive_cells']}) in {sweet['seconds']:.1f}s"
    )
    improve = report["improve"]
    print(
        f"improve: {improve['winner_scheduler']} beats fifo by "
        f"{improve['improvement_pct']:.2f}% on recursive graphs "
        f"({improve['cells']} cells, {improve['seconds']:.1f}s)"
    )
    warm = report["warm_rerun"]
    print(
        f"warm re-run: {warm['cells']} cells, {warm['executed']} executed, "
        f"{warm['cache_hits']} hits in {warm['seconds']:.2f}s -> "
        f"{warm['winner']}"
    )

    failures = check_report(report)
    if failures:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
