"""Tests for the Nexus# address-distribution hash (Section IV-B)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.nexus.distribution import (
    best_case_round_robin,
    distribution_histogram,
    fairness_index,
    nexus_hash,
    nexus_hash_array,
    worst_case_blocked,
)


class TestNexusHash:
    def test_in_range(self):
        for num_tg in (1, 2, 5, 6, 8, 32):
            for address in (0x0, 0x123456, 0x7F3A00001234, (1 << 48) - 1):
                assert 0 <= nexus_hash(address, num_tg) < num_tg

    def test_deterministic(self):
        assert nexus_hash(0xABCDEF, 6) == nexus_hash(0xABCDEF, 6)

    def test_single_task_graph_always_zero(self):
        for address in range(0, 4096, 64):
            assert nexus_hash(address, 1) == 0

    def test_only_low_20_bits_matter(self):
        base = 0x0003_1234_5678 & ((1 << 20) - 1)
        high = base | (0xABC << 20)
        assert nexus_hash(base, 8) == nexus_hash(high, 8)

    def test_matches_paper_formula(self):
        # TaskGraphID = (addr[19:15] ^ addr[14:10] ^ addr[9:5] ^ addr[4:0]) mod n
        address = 0b1011_0110_1001_0110_1011
        expected = (
            ((address >> 15) & 0x1F)
            ^ ((address >> 10) & 0x1F)
            ^ ((address >> 5) & 0x1F)
            ^ (address & 0x1F)
        ) % 6
        assert nexus_hash(address, 6) == expected

    def test_invalid_task_graph_count(self):
        with pytest.raises(ConfigurationError):
            nexus_hash(0x100, 0)
        with pytest.raises(ConfigurationError):
            nexus_hash(0x100, 33)

    def test_array_matches_scalar(self):
        addresses = np.arange(0, 64 * 500, 64, dtype=np.uint64)
        vector = nexus_hash_array(addresses, 6)
        scalar = [nexus_hash(int(a), 6) for a in addresses]
        np.testing.assert_array_equal(vector, scalar)


class TestFairness:
    def test_cache_line_stream_is_balanced(self):
        # Cache-line strided heap addresses: every task graph gets work.
        addresses = 0x7F3A_0000_0000 + 64 * np.arange(6000, dtype=np.uint64)
        for num_tg in (2, 4, 6, 8):
            histogram = distribution_histogram(addresses, num_tg)
            assert histogram.sum() == 6000
            assert histogram.min() > 0
            assert fairness_index(histogram) > 0.9

    def test_empty_stream(self):
        histogram = distribution_histogram([], 4)
        assert histogram.tolist() == [0, 0, 0, 0]
        assert fairness_index(histogram) == 1.0

    def test_single_hot_address_is_worst_case(self):
        histogram = distribution_histogram([0x40] * 100, 4)
        assert fairness_index(histogram) == pytest.approx(0.25)


class TestReferenceDistributions:
    def test_round_robin_best_case(self):
        assignment = best_case_round_robin(8, 4)
        assert assignment.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_blocked_worst_case(self):
        assignment = worst_case_blocked(8, 4)
        assert assignment.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_both_assign_equal_share(self):
        rr = np.bincount(best_case_round_robin(100, 4), minlength=4)
        blocked = np.bincount(worst_case_blocked(100, 4), minlength=4)
        np.testing.assert_array_equal(rr, blocked)

    def test_empty(self):
        assert best_case_round_robin(0, 4).size == 0
        assert worst_case_blocked(0, 4).size == 0

    def test_negative_items_rejected(self):
        with pytest.raises(ConfigurationError):
            best_case_round_robin(-1, 4)
        with pytest.raises(ConfigurationError):
            worst_case_blocked(-1, 4)
