"""Pluggable ready-task scheduling policies.

The paper's testbench dispatches ready tasks to free cores in FIFO order
("the RTS reads them from the Nexus IO unit in FIFO order").  This module
makes that discipline one policy among several: the machine runtime asks
a :class:`SchedulerPolicy` which queued ready task a freed core should
run next, so dispatch order becomes a swappable experiment axis without
touching the event loop.

A policy only ever sees tasks that are *ready but waiting* — whenever a
core is idle, a newly ready task starts immediately (that is the
machine's contract, not the policy's).  Consequently the default FIFO
policy reproduces the paper's schedules exactly, and golden-trace
makespans are byte-identical.

Built-in policies (see :data:`POLICY_REGISTRY`):

``fifo``
    Dispatch in ready order — the paper's discipline and the default.
``sjf`` / ``ljf``
    Priority by task duration: shortest-first drains wide fan-outs of
    small tasks early; longest-first approximates critical-path-first
    for workloads whose long tasks gate the makespan.
``locality``
    Affinity-aware: a freed core prefers the oldest queued task whose
    function it last executed (warm instruction/data caches), falling
    back to FIFO order.  Models a locality-aware RTS on top of the
    hardware manager.
"""

from __future__ import annotations

import abc
from collections import deque
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Set, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.trace.task import TaskDescriptor


class SchedulerPolicy(abc.ABC):
    """Decides which queued ready task a freed core runs next.

    The machine calls :meth:`enqueue` when a task becomes ready while no
    core is idle, and :meth:`select` when a core frees up and the queue
    is non-empty.  Policies are stateful per run; :meth:`reset` must
    return them to a pristine state (machines reset their policy at the
    start of every :meth:`~repro.system.machine.Machine.run`).
    """

    #: Canonical policy name (also the CLI spelling).
    name: str = "abstract"

    #: When true, the machine reports every task start via
    #: :meth:`on_start` (kept opt-in so the default FIFO hot path pays
    #: nothing for it).
    wants_start_events: bool = False

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all state so the same instance can run another trace."""

    @abc.abstractmethod
    def enqueue(self, task_id: int, task: TaskDescriptor, now: float) -> None:
        """A task became ready while all cores were busy."""

    @abc.abstractmethod
    def select(self, core: int, now: float) -> Optional[int]:
        """Pick the queued task that freed ``core`` should run next.

        Only called when :meth:`__len__` reports pending tasks; returns
        the chosen task id (policies must eventually drain every enqueued
        task — starving one would deadlock the simulated machine).
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of ready tasks currently queued."""

    def on_start(self, task_id: int, task: TaskDescriptor, core: int, now: float) -> None:
        """A task started on ``core`` (only called if ``wants_start_events``)."""

    def describe(self) -> Dict[str, object]:
        """Serialisable identity of the policy (results metadata, cache keys)."""
        return {"kind": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FifoPolicy(SchedulerPolicy):
    """Dispatch ready tasks in the order they were reported (the paper)."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[int] = deque()

    def reset(self) -> None:
        self._queue.clear()

    def enqueue(self, task_id: int, task: TaskDescriptor, now: float) -> None:
        self._queue.append(task_id)

    def select(self, core: int, now: float) -> Optional[int]:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class DurationPriorityPolicy(SchedulerPolicy):
    """Priority by task duration (shortest- or longest-first).

    Ties (equal durations) fall back to ready order, so the policy stays
    deterministic and degenerates to FIFO on constant-duration traces.
    """

    name = "sjf"

    def __init__(self, longest: bool = False) -> None:
        self.longest = longest
        if longest:
            self.name = "ljf"
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0

    def reset(self) -> None:
        self._heap.clear()
        self._seq = 0

    def enqueue(self, task_id: int, task: TaskDescriptor, now: float) -> None:
        key = -task.duration_us if self.longest else task.duration_us
        heappush(self._heap, (key, self._seq, task_id))
        self._seq += 1

    def select(self, core: int, now: float) -> Optional[int]:
        return heappop(self._heap)[2] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def describe(self) -> Dict[str, object]:
        return {"kind": "duration_priority", "order": "longest" if self.longest else "shortest"}


class LocalityPolicy(SchedulerPolicy):
    """Affinity-aware dispatch: prefer the function the core last ran.

    Each core remembers the function of the last task it executed; when
    it frees up it takes the *oldest* queued task of that function, and
    falls back to plain FIFO order when none is queued.  Queues are kept
    per function with lazy deletion, so both paths stay O(1) amortised.
    """

    name = "locality"
    wants_start_events = True

    def __init__(self) -> None:
        self._queue: Deque[int] = deque()
        self._by_function: Dict[str, Deque[int]] = {}
        self._taken: Set[int] = set()
        self._pending = 0
        self._last_function: Dict[int, str] = {}

    def reset(self) -> None:
        self._queue.clear()
        self._by_function.clear()
        self._taken.clear()
        self._pending = 0
        self._last_function.clear()

    def enqueue(self, task_id: int, task: TaskDescriptor, now: float) -> None:
        function = task.function
        self._queue.append(task_id)
        bucket = self._by_function.get(function)
        if bucket is None:
            bucket = self._by_function[function] = deque()
        bucket.append(task_id)
        self._pending += 1

    def _pop_live(self, queue: Deque[int]) -> Optional[int]:
        taken = self._taken
        while queue:
            task_id = queue.popleft()
            if task_id in taken:
                taken.discard(task_id)  # consumed its lazy tombstone
                continue
            return task_id
        return None

    def select(self, core: int, now: float) -> Optional[int]:
        if self._pending == 0:
            return None
        chosen: Optional[int] = None
        function = self._last_function.get(core)
        if function is not None:
            bucket = self._by_function.get(function)
            if bucket is not None:
                chosen = self._pop_live(bucket)
        if chosen is None:
            chosen = self._pop_live(self._queue)
            if chosen is None:  # pragma: no cover - guarded by _pending
                return None
        # The task may still sit in the *other* queue; tombstone it there.
        self._taken.add(chosen)
        self._pending -= 1
        return chosen

    def on_start(self, task_id: int, task: TaskDescriptor, core: int, now: float) -> None:
        self._last_function[core] = task.function

    def __len__(self) -> int:
        return self._pending


#: Canonical name -> zero-argument policy factory.
POLICY_REGISTRY = {
    "fifo": FifoPolicy,
    "sjf": lambda: DurationPriorityPolicy(longest=False),
    "ljf": lambda: DurationPriorityPolicy(longest=True),
    "locality": LocalityPolicy,
}

#: Accepted aliases (CLI convenience) -> canonical name.
_POLICY_ALIASES = {
    "fifo": "fifo",
    "default": "fifo",
    "sjf": "sjf",
    "shortest": "sjf",
    "shortest-first": "sjf",
    "ljf": "ljf",
    "longest": "ljf",
    "longest-first": "ljf",
    "locality": "locality",
    "affinity": "locality",
}

PolicyLike = Union[str, SchedulerPolicy]


def canonical_policy_name(policy: PolicyLike) -> str:
    """Normalise a policy spec to its canonical name."""
    if isinstance(policy, SchedulerPolicy):
        return policy.name
    canonical = _POLICY_ALIASES.get(policy.strip().lower())
    if canonical is None:
        raise ConfigurationError(
            f"unknown scheduler policy {policy!r}; expected one of "
            + ", ".join(sorted(POLICY_REGISTRY))
        )
    return canonical


def make_policy(policy: PolicyLike) -> SchedulerPolicy:
    """Build (or pass through) a :class:`SchedulerPolicy` instance."""
    if isinstance(policy, SchedulerPolicy):
        return policy
    return POLICY_REGISTRY[canonical_policy_name(policy)]()


def describe_policy(policy: PolicyLike) -> Dict[str, object]:
    """Canonical serialisable description (sweep cache keys hash this)."""
    return make_policy(policy).describe()


def list_policies() -> List[str]:
    """Canonical names of all built-in policies."""
    return sorted(POLICY_REGISTRY)
