"""Task and trace model.

The paper's evaluation is *trace driven*: each benchmark is reduced to a
sequence of task descriptors (function identifier, parameter list with
access direction and memory address, measured execution time) plus the
barrier pragmas (`taskwait`, `taskwait on`) the master thread executes
between task submissions.  This package defines that representation:

* :class:`repro.trace.task.TaskDescriptor` — a single task instance.
* :class:`repro.trace.task.Parameter` / :class:`repro.trace.task.Direction`
  — one entry of a task's input/output list.
* :class:`repro.trace.trace.Trace` — an ordered program: task submissions
  interleaved with barrier events, exactly what the RTS testbench replays.
* :mod:`repro.trace.dag` — derives the task dependency DAG from the
  parameter addresses using OmpSs semantics (RAW, WAR and WAW hazards on
  the same address), computes critical paths and checks schedules.
* :mod:`repro.trace.stats` — per-trace statistics matching Table II.
* :mod:`repro.trace.dynamic` — dynamic task programs: tasks that spawn
  tasks and issue ``taskwait`` while the machine runs
  (:class:`~repro.trace.dynamic.DynamicProgram`, body op vocabulary,
  serial elaboration back to a static trace).
* :mod:`repro.trace.stream` — the streaming pipeline: the
  :class:`~repro.trace.stream.TaskStream` protocol, replayable
  :class:`~repro.trace.stream.TraceStream` sources and
  :func:`~repro.trace.stream.materialize`, so million-task workloads
  never need the whole program in memory.
* :mod:`repro.trace.serialization` — on-disk formats: a single-document
  JSON trace plus a chunked JSONL stream format with lazy, bounded-memory
  readers (:class:`~repro.trace.serialization.TraceWriter` /
  :func:`~repro.trace.serialization.open_trace_stream`).
"""

from repro.trace.task import Direction, Parameter, TaskDescriptor
from repro.trace.events import SpawnEvent, TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent, TraceEvent
from repro.trace.trace import Trace, TraceBuilder
from repro.trace.dynamic import (
    Compute,
    DynamicProgram,
    Spawn,
    Taskwait,
    TaskwaitOn,
    TaskRequest,
    is_dynamic_program,
    task_request,
)
from repro.trace.dag import DependencyGraph, build_dependency_graph, validate_schedule
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.stream import (
    EventEmitter,
    TaskStream,
    TraceStream,
    as_stream,
    limit_stream,
    materialize,
    truncate_trace,
)
from repro.trace.serialization import (
    TraceWriter,
    iter_trace_events,
    load_trace,
    open_trace_stream,
    save_trace,
    trace_from_json,
    trace_to_json,
    write_trace_stream,
)

__all__ = [
    "Direction",
    "Parameter",
    "TaskDescriptor",
    "TraceEvent",
    "SpawnEvent",
    "TaskSubmitEvent",
    "Compute",
    "Spawn",
    "Taskwait",
    "TaskwaitOn",
    "TaskRequest",
    "DynamicProgram",
    "is_dynamic_program",
    "task_request",
    "TaskwaitEvent",
    "TaskwaitOnEvent",
    "Trace",
    "TraceBuilder",
    "DependencyGraph",
    "build_dependency_graph",
    "validate_schedule",
    "TraceStatistics",
    "compute_statistics",
    "EventEmitter",
    "TaskStream",
    "TraceStream",
    "as_stream",
    "limit_stream",
    "materialize",
    "truncate_trace",
    "TraceWriter",
    "iter_trace_events",
    "load_trace",
    "open_trace_stream",
    "save_trace",
    "trace_from_json",
    "trace_to_json",
    "write_trace_stream",
]
