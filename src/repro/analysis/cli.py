"""Command-line entry point: ``nexus-repro``.

Runs one of the paper's experiments and prints the regenerated table or
figure as plain text.  Examples::

    nexus-repro table1
    nexus-repro table2 --scale 0.1
    nexus-repro figure8 --scale 0.05 --workloads c-ray h264dec-1x1-10f
    nexus-repro figure9 --matrix-sizes 250 500
    nexus-repro microbench
    nexus-repro simulate --workload h264dec-1x1-10f --manager "nexus#6" --cores 16
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.factories import parse_manager
from repro.common.profiling import maybe_profile
from repro.analysis.figures import (
    distribution_quality_report,
    figure7_report,
    figure8_report,
    figure9_report,
    microbenchmark_report,
)
from repro.analysis.tables import table1_report, table2_report, table3_report, table4_report
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import SweepSpec
from repro.workloads.registry import get_workload, list_workloads


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Sweep-execution options shared by every simulation-heavy command."""
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="worker processes for the sweep (default 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory (incremental reruns)")


def _runner_from_args(args: argparse.Namespace) -> SweepRunner:
    return SweepRunner(n_jobs=args.n_jobs, cache_dir=args.cache_dir)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nexus-repro",
        description="Reproduce the tables and figures of the Nexus# paper (IPDPS 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: FPGA utilisation and frequencies")

    p_t2 = sub.add_parser("table2", help="Table II: workload statistics")
    p_t2.add_argument("--scale", type=float, default=1.0)
    p_t2.add_argument("--seed", type=int, default=None)

    sub.add_parser("table3", help="Table III: Gaussian elimination task counts")

    p_t4 = sub.add_parser("table4", help="Table IV: maximum speedups")
    p_t4.add_argument("--scale", type=float, default=0.05)
    p_t4.add_argument("--seed", type=int, default=None)
    _add_runner_arguments(p_t4)

    p_f7 = sub.add_parser("figure7", help="Figure 7: Nexus# scalability vs. #task graphs")
    p_f7.add_argument("--scale", type=float, default=0.05)
    p_f7.add_argument("--groupings", type=int, nargs="+", default=[1, 2, 4, 8])
    p_f7.add_argument("--seed", type=int, default=None)
    _add_runner_arguments(p_f7)

    p_f8 = sub.add_parser("figure8", help="Figure 8: Starbench speedups per manager")
    p_f8.add_argument("--scale", type=float, default=0.05)
    p_f8.add_argument("--workloads", nargs="+", default=None)
    p_f8.add_argument("--seed", type=int, default=None)
    _add_runner_arguments(p_f8)

    p_f9 = sub.add_parser("figure9", help="Figure 9: Gaussian elimination speedups")
    p_f9.add_argument("--matrix-sizes", type=int, nargs="+", default=[250, 500, 1000])
    _add_runner_arguments(p_f9)

    sub.add_parser("microbench", help="Section IV-E 5-task micro-benchmark")
    sub.add_parser("distribution", help="Figure 3 distribution-quality study")
    sub.add_parser("workloads", help="List available workloads")

    p_sim = sub.add_parser("simulate", help="Run one workload on one manager")
    p_sim.add_argument("--workload", required=True)
    p_sim.add_argument("--manager", default="nexus#6")
    p_sim.add_argument("--cores", type=int, default=16)
    p_sim.add_argument("--scale", type=float, default=1.0)
    p_sim.add_argument("--seed", type=int, default=None)
    p_sim.add_argument("--scheduler", default="fifo",
                       help="ready-task dispatch policy: fifo (default), sjf, ljf, locality")
    p_sim.add_argument("--topology", default="homogeneous",
                       help="core topology: homogeneous (default), "
                            "biglittle[:little_speed | :big_fraction:little_speed], "
                            "speeds:<s0>,<s1>,...")
    p_sim.add_argument("--profile", action="store_true",
                       help="wrap the simulation in cProfile and print the top "
                            "25 cumulative entries to stderr (hot-path triage)")
    _add_runner_arguments(p_sim)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        print(table1_report()["text"])
    elif args.command == "table2":
        print(table2_report(scale=args.scale, seed=args.seed)["text"])
    elif args.command == "table3":
        print(table3_report()["text"])
    elif args.command == "table4":
        print(table4_report(scale=args.scale, seed=args.seed, runner=_runner_from_args(args))["text"])
    elif args.command == "figure7":
        print(figure7_report(groupings=args.groupings, scale=args.scale, seed=args.seed,
                             runner=_runner_from_args(args))["text"])
    elif args.command == "figure8":
        print(figure8_report(workloads=args.workloads, scale=args.scale, seed=args.seed,
                             runner=_runner_from_args(args))["text"])
    elif args.command == "figure9":
        print(figure9_report(matrix_sizes=args.matrix_sizes, runner=_runner_from_args(args))["text"])
    elif args.command == "microbench":
        print(microbenchmark_report()["text"])
    elif args.command == "distribution":
        print(distribution_quality_report()["text"])
    elif args.command == "workloads":
        print("\n".join(list_workloads()))
    elif args.command == "simulate":
        trace = get_workload(args.workload, scale=args.scale, seed=args.seed)
        spec = SweepSpec(
            workloads=(trace,),
            managers=dict([parse_manager(args.manager)]),
            core_counts=(args.cores,),
            keep_schedule=True,
            schedulers=(args.scheduler,),
            topologies=(args.topology,),
            name=f"simulate:{trace.name}",
        )
        with maybe_profile(args.profile):
            outcome = _runner_from_args(args).run(spec)
        result = outcome.results[0]
        summary = result.summary()
        summary.setdefault("scheduler", result.scheduler)
        if result.topology:
            summary.setdefault("topology", result.topology.get("kind"))
        for key, value in summary.items():
            print(f"{key:24s} {value}")
        utilisation = result.per_core_utilization
        if utilisation:
            print(f"{'core_util_per_core':24s} "
                  + " ".join(f"{u:.2f}" for u in utilisation))
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
