"""repro — a Python reproduction of *Nexus#: A Distributed Hardware Task
Manager for Task-Based Programming Models* (Dallou, Engelhardt, Elhossini,
Juurlink — IPDPS 2015).

The package provides:

* cycle-approximate models of the **Nexus#** distributed hardware task
  manager and its centralised predecessor **Nexus++** (:mod:`repro.nexus`);
* software baselines: the **Nanos** OmpSs runtime model, an optimistic
  400-cycle software manager, and the zero-overhead **Ideal** manager
  (:mod:`repro.managers`);
* a trace-driven **multicore machine simulator** replaying OmpSs-style
  task programs, including ``taskwait`` / ``taskwait on`` semantics
  (:mod:`repro.system`, :mod:`repro.trace`);
* **workload generators** reproducing the structure of the paper's
  Starbench traces, the Gaussian-elimination micro-benchmark and the
  5-task insertion micro-benchmark (:mod:`repro.workloads`);
* an **OmpSs-like Python API** for writing new task programs
  (:mod:`repro.runtime`);
* a declarative, cached, parallel **experiment layer** — ``SweepSpec`` /
  ``SweepRunner`` grids over workloads × managers × cores × seeds
  (:mod:`repro.experiments`);
* the **FPGA resource model** of Table I (:mod:`repro.fpga`) and the
  **analysis layer** regenerating every table and figure of the paper
  (:mod:`repro.analysis`).

Quickstart::

    from repro import (NexusSharpConfig, NexusSharpManager, generate_h264dec,
                       simulate)

    trace = generate_h264dec(grouping=1, num_frames=10, scale=0.05)
    manager = NexusSharpManager(NexusSharpConfig(num_task_graphs=6))
    result = simulate(trace, manager, num_cores=16)
    print(result.speedup_vs_serial)
"""

from repro.common.errors import (
    AnalysisError,
    CapacityError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.managers import (
    IdealManager,
    NanosConfig,
    NanosManager,
    TaskManagerModel,
    VandierendonckConfig,
    VandierendonckManager,
)
from repro.nexus import (
    NexusPlusPlusConfig,
    NexusPlusPlusManager,
    NexusSharpConfig,
    NexusSharpManager,
    nexus_hash,
)
from repro.experiments import ResultCache, SweepRunner, SweepSpec, run_sweep
from repro.runtime import DataHandle, DataMatrix, TaskProgram
from repro.system import Machine, MachineConfig, MachineResult, simulate
from repro.trace import (
    Direction,
    Parameter,
    Trace,
    TraceBuilder,
    TaskDescriptor,
    build_dependency_graph,
    compute_statistics,
    load_trace,
    save_trace,
)
from repro.workloads import (
    generate_cray,
    generate_gaussian_elimination,
    generate_h264dec,
    generate_microbenchmark,
    generate_rotcc,
    generate_sparselu,
    generate_streamcluster,
    get_workload,
    list_workloads,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "TraceError",
    "SimulationError",
    "CapacityError",
    "AnalysisError",
    # managers
    "TaskManagerModel",
    "IdealManager",
    "NanosManager",
    "NanosConfig",
    "VandierendonckManager",
    "VandierendonckConfig",
    "NexusPlusPlusManager",
    "NexusPlusPlusConfig",
    "NexusSharpManager",
    "NexusSharpConfig",
    "nexus_hash",
    # experiments
    "SweepSpec",
    "SweepRunner",
    "ResultCache",
    "run_sweep",
    # runtime API
    "TaskProgram",
    "DataHandle",
    "DataMatrix",
    # machine
    "Machine",
    "MachineConfig",
    "MachineResult",
    "simulate",
    # trace model
    "Direction",
    "Parameter",
    "TaskDescriptor",
    "Trace",
    "TraceBuilder",
    "build_dependency_graph",
    "compute_statistics",
    "save_trace",
    "load_trace",
    # workloads
    "generate_cray",
    "generate_rotcc",
    "generate_sparselu",
    "generate_streamcluster",
    "generate_h264dec",
    "generate_gaussian_elimination",
    "generate_microbenchmark",
    "get_workload",
    "list_workloads",
    "__version__",
]
