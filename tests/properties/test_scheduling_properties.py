"""Property tests: every scheduler x topology combination stays valid.

The refactor's core guarantee: whatever dispatch policy and core topology
a machine is configured with, the resulting schedule must still respect
every data dependency of the trace (``validate_schedule``), run every
task exactly once, and keep the makespan within its theoretical bounds.
Checked exhaustively on the committed golden traces and, via hypothesis,
on random task programs.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.managers.ideal import IdealManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.system.machine import simulate
from repro.system.scheduling import list_policies
from repro.trace.dag import build_dependency_graph
from repro.trace.serialization import load_trace
from repro.workloads.synthetic import generate_random_dag

GOLDEN_DATA = Path(__file__).parent.parent / "golden" / "data"

#: Small golden traces (kept cheap: the full matrix is policies x
#: topologies x traces).
GOLDEN_KEYS = ("microbench", "gaussian", "synthetic")

TOPOLOGIES = ("homogeneous", "homogeneous:0.5", "biglittle:0.5", "biglittle:0.25:0.5:2")

ALL_POLICIES = tuple(list_policies())


@pytest.fixture(scope="module")
def golden_traces():
    return {key: load_trace(GOLDEN_DATA / f"{key}.json.gz") for key in GOLDEN_KEYS}


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("scheduler", ALL_POLICIES)
@pytest.mark.parametrize("key", GOLDEN_KEYS)
def test_policy_topology_matrix_respects_dependencies(golden_traces, key, scheduler, topology):
    """validate=True runs validate_schedule inside the machine."""
    trace = golden_traces[key]
    result = simulate(trace, IdealManager(), 8, validate=True,
                      scheduler=scheduler, topology=topology)
    assert result.num_tasks == trace.num_tasks
    assert len(result.finish_times) == trace.num_tasks
    assert result.scheduler == scheduler


@pytest.mark.parametrize("scheduler", ALL_POLICIES)
def test_policy_matrix_with_hardware_manager(golden_traces, scheduler):
    """The policies also hold under a timed hardware manager model."""
    trace = golden_traces["microbench"]
    manager = NexusSharpManager(NexusSharpConfig(num_task_graphs=2, frequency_mhz=100.0))
    result = simulate(trace, manager, 4, validate=True,
                      scheduler=scheduler, topology="biglittle:0.5")
    assert len(result.finish_times) == trace.num_tasks


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("scheduler", ALL_POLICIES)
def test_makespan_bounds_hold_on_golden_synthetic(golden_traces, scheduler, topology):
    """Critical path (scaled by the fastest core) bounds every makespan."""
    trace = golden_traces["synthetic"]
    graph = build_dependency_graph(trace)
    result = simulate(trace, IdealManager(), 8, validate=True,
                      scheduler=scheduler, topology=topology)
    from repro.system.topology import resolve_topology

    speeds = resolve_topology(topology, 8).speed_factors
    fastest, slowest = max(speeds), min(speeds)
    assert result.makespan_us >= graph.critical_path_length() / fastest - 1e-6
    assert result.makespan_us <= graph.total_work() / slowest + 1e-6


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    num_tasks=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    cores=st.integers(min_value=1, max_value=8),
    scheduler=st.sampled_from(ALL_POLICIES),
    topology=st.sampled_from(TOPOLOGIES),
)
def test_random_dags_stay_valid_for_every_policy(num_tasks, seed, cores, scheduler, topology):
    trace = generate_random_dag(num_tasks, max_predecessors=3, seed=seed)
    result = simulate(trace, IdealManager(), cores, validate=True,
                      scheduler=scheduler, topology=topology)
    assert len(result.finish_times) == trace.num_tasks
