"""The seeded load generator: determinism and an in-process load run."""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig, start_in_thread
from repro.serve.loadgen import LoadReport, RequestMix, build_requests, run_load


class TestBuildRequests:
    def test_same_seed_same_requests(self):
        assert build_requests(7, 50) == build_requests(7, 50)

    def test_different_seeds_differ(self):
        assert build_requests(1, 50) != build_requests(2, 50)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            RequestMix(templates=(), weights=())
        with pytest.raises(ValueError):
            RequestMix(templates=({"workload": "microbench"},),
                       weights=(1.0, 2.0))

    def test_requests_repeat_cells(self):
        """The mix must contain duplicates — that is what exercises the
        dedupe and warm-cache paths under load."""
        requests = build_requests(0, 100)
        distinct = {tuple(sorted(body.items())) for body in requests}
        assert len(distinct) < len(requests)


class TestLoadReport:
    def test_percentiles_and_throughput(self):
        report = LoadReport(offered=5, ok=5, wall_s=2.0,
                            latencies_s=[0.1, 0.2, 0.3, 0.4, 0.5])
        assert report.percentile(0.0) == 0.1
        assert report.percentile(1.0) == 0.5
        assert report.throughput_rps == 2.5
        doc = report.to_json()
        assert doc["p50_latency_ms"] == 300.0
        assert doc["all_429s_carried_retry_after"] is True  # vacuously

    def test_empty_report(self):
        doc = LoadReport().to_json()
        assert doc["p50_latency_ms"] is None
        assert doc["throughput_rps"] == 0.0


class TestRunLoad:
    def test_seeded_load_against_a_live_server(self):
        handle = start_in_thread(ServeConfig(batch_window=0.001))
        try:
            requests = build_requests(3, 40)
            report = run_load(handle.host, handle.port, requests,
                              concurrency=4)
        finally:
            handle.stop()
        assert report.offered == 40
        assert report.ok == 40
        assert report.errors == 0 and report.saturated == 0
        assert report.cached > 0  # the mix repeats cells
        assert report.percentile(0.99) is not None
        assert report.throughput_rps > 0

    def test_load_cli_prints_a_report_and_exits_zero(self, capsys):
        import json

        from repro.serve import cli as serve_cli

        handle = start_in_thread(ServeConfig(batch_window=0.001))
        try:
            code = serve_cli.main(
                ["load", "--connect", f"{handle.host}:{handle.port}",
                 "--requests", "20", "--concurrency", "4", "--seed", "5"])
        finally:
            handle.stop()
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] == report["offered"] == 20
        assert report["errors"] == 0
