"""Standard manager configurations used by the experiments.

A *factory* is a zero-argument callable returning a fresh manager
instance; the experiment sweeps construct one manager per (trace, core
count) combination so that runs never share internal state.

Factories are small frozen dataclasses rather than closures so that

* they pickle — the :class:`repro.experiments.runner.SweepRunner` ships
  them to ``multiprocessing`` workers,
* they can describe themselves — :meth:`describe` feeds the
  content-addressed result cache, so a configuration change invalidates
  exactly the cache entries it affects.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.managers.base import TaskManagerModel
from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosConfig, NanosManager
from repro.managers.software import VandierendonckManager
from repro.nexus.nexuspp import NexusPlusPlusConfig, NexusPlusPlusManager
from repro.nexus.nexussharp import NexusSharpConfig, NexusSharpManager
from repro.nexus.timing import NexusPlusPlusTiming, NexusSharpTiming

ManagerFactory = Callable[[], TaskManagerModel]


@dataclass(frozen=True)
class IdealFactory:
    """The paper's "No Overhead" configuration."""

    def __call__(self) -> TaskManagerModel:
        return IdealManager()

    def describe(self) -> Dict[str, object]:
        return {"kind": "ideal"}


@dataclass(frozen=True)
class NanosFactory:
    """The Nanos software-runtime model (optionally re-calibrated)."""

    config: Optional[NanosConfig] = None

    def __call__(self) -> TaskManagerModel:
        return NanosManager(self.config)

    def describe(self) -> Dict[str, object]:
        config = self.config or NanosConfig()
        return {"kind": "nanos", "config": dataclasses.asdict(config)}


@dataclass(frozen=True)
class VandierendonckFactory:
    """The optimistic 400-cycles-per-task software manager of [17]."""

    def __call__(self) -> TaskManagerModel:
        return VandierendonckManager()

    def describe(self) -> Dict[str, object]:
        return {"kind": "sw400"}


@dataclass(frozen=True)
class NexusPlusPlusFactory:
    """Nexus++ at the given frequency (100 MHz on the ZC706)."""

    frequency_mhz: float = 100.0
    tightly_coupled: bool = False

    def __call__(self) -> TaskManagerModel:
        timing = NexusPlusPlusTiming.tightly_coupled() if self.tightly_coupled else NexusPlusPlusTiming()
        return NexusPlusPlusManager(
            NexusPlusPlusConfig(frequency_mhz=self.frequency_mhz, timing=timing)
        )

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "nexus++",
            "frequency_mhz": self.frequency_mhz,
            "tightly_coupled": self.tightly_coupled,
        }


@dataclass(frozen=True)
class NexusSharpFactory:
    """Nexus# with ``num_task_graphs`` task graphs.

    ``frequency_mhz=None`` selects the Table I synthesis frequency for the
    configuration (the paper's Figure 7(b) / Figure 8 setting); pass an
    explicit ``100.0`` for the flat-frequency study of Figure 7(a).

    ``table_sets``/``table_ways`` override the dependence-table set
    geometry (the paper's 256 sets x 8 ways); ``None`` keeps the
    :class:`NexusSharpConfig` default.  The tuner sweeps these.
    """

    num_task_graphs: int = 6
    frequency_mhz: Optional[float] = None
    tightly_coupled: bool = False
    table_sets: Optional[int] = None
    table_ways: Optional[int] = None

    def __call__(self) -> TaskManagerModel:
        timing = NexusSharpTiming.tightly_coupled() if self.tightly_coupled else NexusSharpTiming()
        overrides: Dict[str, int] = {}
        if self.table_sets is not None:
            overrides["table_sets"] = self.table_sets
        if self.table_ways is not None:
            overrides["table_ways"] = self.table_ways
        return NexusSharpManager(
            NexusSharpConfig(
                num_task_graphs=self.num_task_graphs,
                frequency_mhz=self.frequency_mhz,
                timing=timing,
                **overrides,
            )
        )

    def describe(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "kind": "nexus#",
            "num_task_graphs": self.num_task_graphs,
            "frequency_mhz": self.frequency_mhz,
            "tightly_coupled": self.tightly_coupled,
        }
        # Geometry overrides only appear when set, so every pre-existing
        # cache key (written before the axis existed) stays valid.
        if self.table_sets is not None:
            doc["table_sets"] = self.table_sets
        if self.table_ways is not None:
            doc["table_ways"] = self.table_ways
        return doc


def describe_factory(factory: ManagerFactory) -> Mapping[str, object]:
    """A serialisable description of ``factory`` for cache keys.

    Factories defined in this module carry an exact configuration
    description; for arbitrary callables the qualified name is the best
    stable identifier available (callers who cache results of custom
    factories should implement ``describe`` themselves).
    """
    describe = getattr(factory, "describe", None)
    if callable(describe):
        return describe()
    name = getattr(factory, "__qualname__", None) or type(factory).__qualname__
    return {"kind": "opaque", "callable": f"{getattr(factory, '__module__', '?')}.{name}"}


def ideal_factory() -> ManagerFactory:
    """The paper's "No Overhead" configuration."""
    return IdealFactory()


def nanos_factory(config: Optional[NanosConfig] = None) -> ManagerFactory:
    """The Nanos software-runtime model."""
    return NanosFactory(config)


def vandierendonck_factory() -> ManagerFactory:
    """The optimistic 400-cycles-per-task software manager of [17]."""
    return VandierendonckFactory()


def nexus_pp_factory(
    frequency_mhz: float = 100.0,
    *,
    tightly_coupled: bool = False,
) -> ManagerFactory:
    """Nexus++ at the given frequency (100 MHz on the ZC706)."""
    return NexusPlusPlusFactory(frequency_mhz=frequency_mhz, tightly_coupled=tightly_coupled)


def nexus_sharp_factory(
    num_task_graphs: int = 6,
    frequency_mhz: Optional[float] = None,
    *,
    tightly_coupled: bool = False,
) -> ManagerFactory:
    """Nexus# with ``num_task_graphs`` task graphs (see NexusSharpFactory)."""
    return NexusSharpFactory(
        num_task_graphs=num_task_graphs,
        frequency_mhz=frequency_mhz,
        tightly_coupled=tightly_coupled,
    )


def paper_manager_set(
    *,
    nexus_sharp_task_graphs: int = 6,
    include_ideal: bool = True,
) -> Dict[str, ManagerFactory]:
    """The manager line-up of Figure 8: Ideal, Nanos, Nexus++, Nexus# 6 TG.

    Nexus# runs at its synthesis frequency (55.56 MHz for 6 task graphs),
    Nexus++ at 100 MHz, matching the paper's experimental setup.
    """
    managers: Dict[str, ManagerFactory] = {}
    if include_ideal:
        managers["Ideal"] = ideal_factory()
    managers["Nanos"] = nanos_factory()
    managers["Nexus++"] = nexus_pp_factory()
    managers[f"Nexus# {nexus_sharp_task_graphs}TG"] = nexus_sharp_factory(nexus_sharp_task_graphs)
    return managers


def parse_manager(name: str) -> Tuple[str, ManagerFactory]:
    """Resolve a short textual manager name to (display name, factory).

    Recognised names: ``ideal``, ``nanos``, ``sw400``, ``nexus++``,
    ``nexus#<n>`` (e.g. ``nexus#6``), ``nexus#<n>@<MHz>``, and an
    optional dependence-table geometry suffix ``/<sets>x<ways>``
    (``nexus#6@100/64x4``).  This is the parser behind
    :func:`make_manager`, the sweep CLI and the tuner's search space.

    >>> name, factory = parse_manager("nexus#6")
    >>> name
    'Nexus# 6TG'
    >>> factory().name
    'Nexus# 6TG'
    >>> parse_manager("ideal")[0]
    'Ideal'
    >>> parse_manager("nexus#4@100/64x4")[0]
    'Nexus# 4TG@100MHz/64x4'
    """
    token = name.strip().lower()
    if token == "ideal":
        return "Ideal", IdealFactory()
    if token == "nanos":
        return "Nanos", NanosFactory()
    if token == "sw400":
        return "SW-400cycles", VandierendonckFactory()
    if token in ("nexus++", "nexuspp"):
        return "Nexus++", NexusPlusPlusFactory()
    if token.startswith("nexus#") or token.startswith("nexussharp"):
        spec = token.split("#", 1)[1] if "#" in token else token[len("nexussharp"):]
        frequency: Optional[float] = None
        table_sets: Optional[int] = None
        table_ways: Optional[int] = None
        try:
            if "/" in spec:
                spec, geometry = spec.split("/", 1)
                sets_text, _, ways_text = geometry.partition("x")
                table_sets, table_ways = int(sets_text), int(ways_text)
            if "@" in spec:
                spec, freq_text = spec.split("@", 1)
                frequency = float(freq_text)
            num_tg = int(spec) if spec else 6
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed manager name {name!r}: expected "
                "nexus#<n>[@MHz][/<sets>x<ways>] with numeric task-graph "
                "count, frequency and table geometry"
            ) from exc
        display = f"Nexus# {num_tg}TG"
        if frequency is not None:
            display += f"@{frequency:g}MHz"
        if table_sets is not None:
            display += f"/{table_sets}x{table_ways}"
        return display, NexusSharpFactory(
            num_task_graphs=num_tg,
            frequency_mhz=frequency,
            table_sets=table_sets,
            table_ways=table_ways,
        )
    raise ConfigurationError(
        f"unknown manager name {name!r}; expected ideal, nanos, sw400, "
        "nexus++ or nexus#<n>[@MHz][/<sets>x<ways>]"
    )


def make_manager(name: str) -> TaskManagerModel:
    """Construct a manager from a short textual name (used by the CLI)."""
    _, factory = parse_manager(name)
    return factory()
