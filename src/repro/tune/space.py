"""Declarative search spaces for the config autotuner.

A :class:`SearchSpace` names *what* the tuner searches — manager
configurations (task-graph counts, table geometries, frequencies, or any
short manager name the sweep CLI accepts), scheduler policies and core
topologies — and *how* candidates are evaluated: a fidelity ladder of
``(workload, seed)`` units at fixed core counts and scale.

Candidates are the cross product manager x scheduler x topology; each
rung of the search evaluates the surviving candidates on a growing
prefix of the unit ladder.  Everything compiles down to ordinary
:class:`~repro.experiments.spec.SweepSpec` grids (via
:meth:`SearchSpace.base_spec` and :meth:`SweepSpec.derive
<repro.experiments.spec.SweepSpec.derive>`), so the tuner inherits the
sweep fabric's content-addressed cache, parallelism and chaos seams
without any new execution machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.analysis.factories import ManagerFactory, describe_factory, parse_manager
from repro.common.constants import DEFAULT_TABLE_SETS, DEFAULT_TABLE_WAYS
from repro.common.errors import ConfigurationError
from repro.experiments.spec import SweepSpec, WorkloadSpec
from repro.system.scheduling import canonical_policy_name
from repro.system.topology import canonical_topology

GeometryLike = Union[str, Tuple[int, int]]


def parse_geometry(value: GeometryLike) -> Tuple[int, int]:
    """Parse a ``"<sets>x<ways>"`` table geometry (tuples pass through).

    >>> parse_geometry("64x4")
    (64, 4)
    """
    if isinstance(value, tuple):
        sets, ways = value
    else:
        sets_text, sep, ways_text = str(value).strip().lower().partition("x")
        if not sep:
            raise ConfigurationError(
                f"table geometry must be '<sets>x<ways>', got {value!r}")
        try:
            sets, ways = int(sets_text), int(ways_text)
        except ValueError:
            raise ConfigurationError(
                f"table geometry must be '<sets>x<ways>', got {value!r}") from None
    if sets < 1 or ways < 1:
        raise ConfigurationError(
            f"table geometry must be positive, got {sets}x{ways}")
    return sets, ways


def nexus_sharp_axis(
    task_graphs: Sequence[int],
    geometries: Sequence[GeometryLike] = ((DEFAULT_TABLE_SETS, DEFAULT_TABLE_WAYS),),
    frequency_mhz: Optional[float] = None,
) -> Tuple[str, ...]:
    """Compile a TG-count x table-geometry grid into manager spec strings.

    The paper-default geometry (256x8) compiles *without* the ``/SxW``
    suffix, so those candidates share cache entries — and display names —
    with every other experiment that sweeps plain ``nexus#<n>`` managers.

    >>> nexus_sharp_axis([4, 6], ["256x8", "64x4"], frequency_mhz=100.0)
    ('nexus#4@100', 'nexus#4@100/64x4', 'nexus#6@100', 'nexus#6@100/64x4')
    """
    specs = []
    for count in task_graphs:
        for geometry in geometries:
            sets, ways = parse_geometry(geometry)
            spec = f"nexus#{count}"
            if frequency_mhz is not None:
                spec += f"@{frequency_mhz:g}"
            if (sets, ways) != (DEFAULT_TABLE_SETS, DEFAULT_TABLE_WAYS):
                spec += f"/{sets}x{ways}"
            specs.append(spec)
    return tuple(specs)


@dataclass(frozen=True)
class Candidate:
    """One point of the searched design space.

    ``display`` doubles as the manager-axis key of every rung's
    :class:`~repro.experiments.spec.SweepSpec`, so a candidate's rows are
    recovered from sweep outcomes by ``(display, scheduler, topology)``.
    """

    manager: str
    display: str
    factory: ManagerFactory
    scheduler: str
    topology: str

    @property
    def key(self) -> str:
        """Stable human-readable identity used in reports and survivors."""
        return f"{self.display}|{self.scheduler}|{self.topology}"

    def describe(self) -> Dict[str, object]:
        return {
            "manager": self.manager,
            "display": self.display,
            "config": dict(describe_factory(self.factory)),
            "scheduler": self.scheduler,
            "topology": self.topology,
        }


@dataclass(frozen=True)
class SearchSpace:
    """The tuner's search space and evaluation setting.

    Parameters
    ----------
    managers:
        Short manager names (``nexus#6``, ``nexus#4@100/64x4``,
        ``nexus++``, ...) — one candidate axis entry each; see
        :func:`nexus_sharp_axis` for compiling a TG x geometry grid.
    workloads:
        Registry workload names forming the fidelity ladder together
        with ``seeds``: unit ``(workload, seed)``, ordered seed-major so
        the first rung already sees every workload once.
    schedulers / topologies:
        Dispatch policies and core topologies to cross with the
        managers (canonicalised; aliases collapse).
    core_counts / scale:
        The fixed evaluation setting of every unit.
    seeds:
        Workload-generator seeds (each multiplies the unit ladder).
    """

    managers: Tuple[str, ...]
    workloads: Tuple[str, ...]
    schedulers: Tuple[str, ...] = ("fifo",)
    topologies: Tuple[str, ...] = ("homogeneous",)
    core_counts: Tuple[int, ...] = (16,)
    seeds: Tuple[int, ...] = (2015,)
    scale: float = 0.1
    name: str = "tune"

    def __post_init__(self) -> None:
        object.__setattr__(self, "managers", tuple(self.managers))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "schedulers", tuple(
            canonical_policy_name(s) for s in self.schedulers))
        object.__setattr__(self, "topologies", tuple(
            canonical_topology(t) for t in self.topologies))
        object.__setattr__(self, "core_counts", tuple(int(c) for c in self.core_counts))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.managers:
            raise ConfigurationError("a search space needs at least one manager")
        if not self.workloads:
            raise ConfigurationError("a search space needs at least one workload")
        if not self.schedulers or not self.topologies:
            raise ConfigurationError(
                "schedulers and topologies must not be empty "
                "(use ('fifo',) / ('homogeneous',) for the defaults)")
        if not self.core_counts or not self.seeds:
            raise ConfigurationError("core_counts and seeds must not be empty")
        # Parse every manager now: a typo should fail at space build time,
        # not halfway into rung 3.
        for manager in self.managers:
            parse_manager(manager)

    # -- enumeration -------------------------------------------------------
    def candidates(self) -> Tuple[Candidate, ...]:
        """The candidate set: managers x schedulers x topologies."""
        out = []
        for manager in self.managers:
            display, factory = parse_manager(manager)
            for scheduler in self.schedulers:
                for topology in self.topologies:
                    out.append(Candidate(
                        manager=manager, display=display, factory=factory,
                        scheduler=scheduler, topology=topology))
        return tuple(out)

    def units(self) -> Tuple[Tuple[str, int], ...]:
        """The fidelity ladder: ``(workload, seed)`` units, seed-major.

        Rung ``r`` evaluates a *prefix* of this ladder, so growing
        fidelity strictly extends — never replaces — the cells already
        simulated for a surviving candidate.
        """
        return tuple((workload, seed)
                     for seed in self.seeds for workload in self.workloads)

    @property
    def cells_per_unit(self) -> int:
        """Grid cells one candidate spends per fidelity unit."""
        return len(self.core_counts)

    def workload_specs(self, units: Sequence[Tuple[str, int]]) -> Tuple[WorkloadSpec, ...]:
        """Materialise ladder units as a :class:`SweepSpec` workload axis."""
        return tuple(WorkloadSpec(name=workload, scale=self.scale, seed=seed)
                     for workload, seed in units)

    def base_spec(self) -> SweepSpec:
        """The full-fidelity, full-candidate grid (rungs derive from it).

        Rung grids are :meth:`~repro.experiments.spec.SweepSpec.derive`-d
        copies with the workload/manager/scheduler/topology axes narrowed
        to the rung's survivors, so machine flags stay in one place.
        """
        return SweepSpec(
            workloads=list(self.workload_specs(self.units())),
            managers={display: factory for display, factory in
                      (parse_manager(m) for m in self.managers)},
            core_counts=self.core_counts,
            schedulers=self.schedulers,
            topologies=self.topologies,
            name=f"tune:{self.name}",
        )

    def describe(self) -> Dict[str, object]:
        """Serialisable description (the tune report's header)."""
        return {
            "name": self.name,
            "managers": list(self.managers),
            "workloads": list(self.workloads),
            "schedulers": list(self.schedulers),
            "topologies": list(self.topologies),
            "core_counts": list(self.core_counts),
            "seeds": list(self.seeds),
            "scale": self.scale,
        }

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self.candidates())
