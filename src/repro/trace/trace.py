"""The :class:`Trace` container and its builder.

A trace is the unit the simulation consumes: an ordered list of
:class:`~repro.trace.events.TraceEvent` objects plus metadata about the
workload it was generated from.  Traces are immutable once built; the
:class:`TraceBuilder` is the mutable construction helper the workload
generators and the OmpSs-like runtime API use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.common.errors import TraceError
from repro.trace.events import TaskSubmitEvent, TaskwaitEvent, TaskwaitOnEvent, TraceEvent
from repro.trace.task import Direction, Parameter, TaskDescriptor, make_params


@dataclass(frozen=True)
class Trace:
    """An immutable, replayable task-submission program.

    Attributes
    ----------
    name:
        Workload name, e.g. ``"h264dec-1x1-10f"``.
    events:
        Master-thread program: task submissions and barriers in order.
    metadata:
        Free-form generator parameters (frame counts, matrix sizes, seed,
        scale factor, ...), recorded so experiments are self-describing.

    Example
    -------
    >>> builder = TraceBuilder("example")
    >>> a = builder.add_task("produce", duration_us=10.0, outputs=[0x1000])
    >>> b = builder.add_task("consume", duration_us=5.0, inputs=[0x1000])
    >>> builder.add_taskwait()
    >>> trace = builder.build()
    >>> trace.num_tasks, trace.num_barriers
    (2, 1)
    >>> trace.total_work_us
    15.0
    >>> [task.function for task in trace.tasks()]
    ['produce', 'consume']
    """

    name: str
    events: tuple[TraceEvent, ...]
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise TraceError("trace name must be non-empty")
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        seen_ids: set[int] = set()
        for event in self.events:
            if isinstance(event, TaskSubmitEvent):
                task_id = event.task.task_id
                if task_id in seen_ids:
                    raise TraceError(f"duplicate task id {task_id} in trace {self.name!r}")
                seen_ids.add(task_id)

    def __getstate__(self) -> Dict[str, object]:
        """Exclude runtime caches (e.g. the machine's compiled program) from
        pickles, so shipping a trace to sweep workers stays lean."""
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_compiled")
        }

    # -- iteration helpers -------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def iter_events(self) -> Iterator[TraceEvent]:
        """Yield the events in order (a trace satisfies the
        :class:`~repro.trace.stream.TaskStream` protocol, so every
        streaming consumer also accepts materialised traces)."""
        return iter(self.events)

    def tasks(self) -> Iterator[TaskDescriptor]:
        """Yield the task descriptors in submission order."""
        for event in self.events:
            if isinstance(event, TaskSubmitEvent):
                yield event.task

    @property
    def num_tasks(self) -> int:
        """Number of task submissions in the trace."""
        return sum(1 for _ in self.tasks())

    @property
    def num_barriers(self) -> int:
        """Number of ``taskwait`` plus ``taskwait on`` events."""
        return sum(1 for e in self.events if not isinstance(e, TaskSubmitEvent))

    @property
    def total_work_us(self) -> float:
        """Sum of all task execution times (micro-seconds)."""
        return sum(task.duration_us for task in self.tasks())

    @property
    def avg_task_us(self) -> float:
        """Mean task execution time (micro-seconds), 0 for empty traces."""
        n = self.num_tasks
        return self.total_work_us / n if n else 0.0

    def task_by_id(self, task_id: int) -> TaskDescriptor:
        """Return the task with ``task_id`` (linear scan; prefer task_map)."""
        for task in self.tasks():
            if task.task_id == task_id:
                return task
        raise TraceError(f"trace {self.name!r} has no task with id {task_id}")

    def task_map(self) -> Dict[int, TaskDescriptor]:
        """Return a dict mapping task id to descriptor."""
        return {task.task_id: task for task in self.tasks()}

    def functions(self) -> Dict[str, int]:
        """Return a mapping of function name to number of task instances."""
        counts: Dict[str, int] = {}
        for task in self.tasks():
            counts[task.function] = counts.get(task.function, 0) + 1
        return counts

    def param_count_range(self) -> tuple[int, int]:
        """Minimum and maximum number of parameters over all tasks."""
        counts = [task.num_params for task in self.tasks()]
        if not counts:
            return (0, 0)
        return (min(counts), max(counts))

    def access_program(self):
        """The trace's compiled access program (compiled on first use).

        Interns every parameter address to a dense id and precomputes each
        task's deduplicated access list into flat arrays (see
        :mod:`repro.trace.compiled`).  The result is cached on the trace —
        like the machine's compiled op program — under a ``_compiled*``
        attribute that :meth:`__getstate__` keeps out of pickles, so
        replaying one trace across many managers compiles it exactly once.
        """
        program = self.__dict__.get("_compiled_access_program")
        if program is None:
            from repro.trace.compiled import CompiledAccessProgram

            program = CompiledAccessProgram(self.tasks())
            object.__setattr__(self, "_compiled_access_program", program)
        return program

    def with_name(self, name: str) -> "Trace":
        """Return a copy of the trace under a different name."""
        return Trace(name=name, events=self.events, metadata=dict(self.metadata))

    def scaled_durations(self, factor: float) -> "Trace":
        """Return a copy with every task duration multiplied by ``factor``."""
        if factor <= 0:
            raise TraceError(f"duration scale factor must be positive, got {factor}")
        events: List[TraceEvent] = []
        for event in self.events:
            if isinstance(event, TaskSubmitEvent):
                events.append(TaskSubmitEvent(event.task.with_duration(event.task.duration_us * factor)))
            else:
                events.append(event)
        metadata = dict(self.metadata)
        metadata["duration_scale"] = factor * float(metadata.get("duration_scale", 1.0))
        return Trace(name=self.name, events=tuple(events), metadata=metadata)


class TraceBuilder:
    """Mutable helper used to construct a :class:`Trace`.

    Task ids are assigned sequentially in submission order, which is also
    the order the hardware receives them, so ids double as submission
    ranks everywhere in the simulation.

    >>> builder = TraceBuilder("ids")
    >>> builder.add_task("t", duration_us=1.0, outputs=[0x2000]).task_id
    0
    >>> builder.add_task("t", duration_us=1.0, outputs=[0x2040]).task_id
    1
    >>> builder.num_tasks
    2
    """

    def __init__(self, name: str, metadata: Optional[Mapping[str, object]] = None) -> None:
        if not name:
            raise TraceError("trace name must be non-empty")
        self.name = name
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._events: List[TraceEvent] = []
        self._next_task_id = 0

    # -- construction ------------------------------------------------------
    def add_task(
        self,
        function: str,
        duration_us: float,
        *,
        inputs: Sequence[int] = (),
        outputs: Sequence[int] = (),
        inouts: Sequence[int] = (),
        params: Optional[Sequence[Parameter]] = None,
        creation_overhead_us: float = 0.0,
    ) -> TaskDescriptor:
        """Append a task submission and return its descriptor.

        Either pass ``params`` explicitly or use the ``inputs`` /
        ``outputs`` / ``inouts`` address lists.
        """
        if params is not None and (inputs or outputs or inouts):
            raise TraceError("pass either params or inputs/outputs/inouts, not both")
        if params is None:
            params = make_params(inputs=inputs, outputs=outputs, inouts=inouts)
        task = TaskDescriptor(
            task_id=self._next_task_id,
            function=function,
            params=tuple(params),
            duration_us=duration_us,
            creation_overhead_us=creation_overhead_us,
        )
        self._next_task_id += 1
        self._events.append(TaskSubmitEvent(task))
        return task

    def add_taskwait(self) -> None:
        """Append a full ``taskwait`` barrier."""
        self._events.append(TaskwaitEvent())

    def add_taskwait_on(self, address: int) -> None:
        """Append a ``taskwait on(address)`` barrier."""
        self._events.append(TaskwaitOnEvent(address=address))

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append pre-built events (task ids must not collide)."""
        for event in events:
            if isinstance(event, TaskSubmitEvent):
                self._events.append(event)
                self._next_task_id = max(self._next_task_id, event.task.task_id + 1)
            else:
                self._events.append(event)

    @property
    def num_tasks(self) -> int:
        """Number of tasks added so far."""
        return sum(1 for e in self._events if isinstance(e, TaskSubmitEvent))

    def build(self) -> Trace:
        """Freeze the builder into an immutable :class:`Trace`."""
        return Trace(name=self.name, events=tuple(self._events), metadata=dict(self.metadata))
