"""Unit tests for Machine.run_stream (the streaming replay path)."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.managers.ideal import IdealManager
from repro.managers.nanos import NanosManager
from repro.nexus.nexuspp import NexusPlusPlusManager
from repro.system.machine import Machine, MachineConfig, simulate, simulate_stream
from repro.trace.stream import EventEmitter, TraceStream
from repro.workloads.synthetic import (
    generate_chain,
    generate_fork_join,
    generate_independent,
    generate_random_dag,
    stream_independent,
)


class TestResultParity:
    """run_stream(trace) must equal run(trace) field for field."""

    @pytest.mark.parametrize("make_manager", [IdealManager, NanosManager, NexusPlusPlusManager])
    def test_full_schedule_parity(self, make_manager):
        trace = generate_random_dag(60, max_predecessors=3, seed=11)
        materialised = simulate(trace, make_manager(), num_cores=4)
        streamed = simulate_stream(trace, make_manager(), num_cores=4, keep_schedule=True)
        assert streamed.makespan_us == materialised.makespan_us
        assert streamed.master_finish_us == materialised.master_finish_us
        assert streamed.core_busy_us == materialised.core_busy_us
        assert streamed.total_work_us == materialised.total_work_us
        assert streamed.num_tasks == materialised.num_tasks
        assert streamed.submit_times == materialised.submit_times
        assert streamed.ready_times == materialised.ready_times
        assert streamed.start_times == materialised.start_times
        assert streamed.finish_times == materialised.finish_times
        assert streamed.task_cores == materialised.task_cores
        assert streamed.per_core_busy_us == materialised.per_core_busy_us

    def test_parity_across_schedulers_and_topologies(self):
        trace = generate_fork_join(3, 6, seed=7)
        for scheduler in ("fifo", "sjf", "locality"):
            for topology in ("homogeneous", "biglittle:0.5"):
                materialised = simulate(trace, IdealManager(), num_cores=4,
                                        scheduler=scheduler, topology=topology)
                streamed = simulate_stream(trace, IdealManager(), num_cores=4,
                                           scheduler=scheduler, topology=topology)
                assert streamed.makespan_us == materialised.makespan_us, (scheduler, topology)

    def test_keep_schedule_false_drops_times(self):
        trace = generate_chain(10, seed=3)
        result = simulate_stream(trace, IdealManager(), num_cores=2)
        assert result.submit_times == {}
        assert result.start_times == {}
        assert result.makespan_us > 0

    def test_validate_checks_the_schedule(self):
        trace = generate_random_dag(40, seed=5)
        result = simulate_stream(trace, IdealManager(), num_cores=4, validate=True)
        assert result.num_tasks == 40


class TestStreamSources:
    def test_accepts_trace_stream_and_bare_iterable(self):
        trace = generate_independent(8, seed=2)
        via_trace = simulate_stream(trace, IdealManager(), 2)
        via_stream = simulate_stream(stream_independent(8, seed=2), IdealManager(), 2)
        machine = Machine(IdealManager(), MachineConfig(num_cores=2))
        via_iterable = machine.run_stream(iter(trace.events))
        assert via_trace.makespan_us == via_stream.makespan_us == via_iterable.makespan_us

    def test_events_processed_recorded(self):
        machine = Machine(IdealManager(), MachineConfig(num_cores=2))
        machine.run_stream(generate_independent(8, seed=2))
        assert machine.last_events_processed > 0


class TestBackPressure:
    def test_max_in_flight_completes_and_bounds(self):
        # A fully independent stream: without a cap everything is in
        # flight at once; with the cap the run still completes correctly.
        result = simulate_stream(stream_independent(200, seed=1), IdealManager(), 4,
                                 max_in_flight=16)
        assert result.num_tasks == 200

    def test_cap_of_one_serialises_submission(self):
        result = simulate_stream(stream_independent(10, duration_us=10.0, seed=1),
                                 IdealManager(), 4, max_in_flight=1)
        # One task in flight at a time on an ideal manager: makespan is
        # the serial sum.
        assert result.makespan_us == pytest.approx(100.0)

    def test_cap_is_invisible_on_a_serial_chain(self):
        # A chain never has more than one runnable task; the cap only
        # stalls submission, which the chain hides entirely.
        uncapped = simulate_stream(generate_chain(20, seed=2), IdealManager(), 2)
        capped = simulate_stream(generate_chain(20, seed=2), IdealManager(), 2,
                                 max_in_flight=1)
        assert capped.makespan_us == uncapped.makespan_us

    def test_invalid_arguments_rejected(self):
        machine = Machine(IdealManager(), MachineConfig(num_cores=2))
        with pytest.raises(SimulationError):
            machine.run_stream(generate_chain(3), max_in_flight=0)
        with pytest.raises(SimulationError):
            machine.run_stream(generate_chain(3), lookahead=0)


class TestErrorDetection:
    def test_in_flight_duplicate_id_rejected(self):
        def events():
            emit = EventEmitter()
            first = emit.task("a", duration_us=5.0, outputs=[0x100])
            yield first
            yield first  # same id resubmitted while still in flight

        machine = Machine(IdealManager(), MachineConfig(num_cores=2))
        with pytest.raises(SimulationError, match="in flight"):
            machine.run_stream(TraceStream("dup", events))

    def test_empty_stream_is_a_valid_noop(self):
        machine = Machine(IdealManager(), MachineConfig(num_cores=2))
        result = machine.run_stream(TraceStream("empty", lambda: iter(())))
        assert result.num_tasks == 0
        assert result.makespan_us == 0.0
