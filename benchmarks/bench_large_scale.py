#!/usr/bin/env python3
"""Large-scale streaming benchmark: a million-task trace, bounded RSS.

The paper's claim is that distributed hardware dependency resolution
keeps overhead flat as task counts grow; this benchmark exercises the
reproduction's *streaming* pipeline at a scale no materialised trace
could reach comfortably — a ~1M-task synthetic fork-join workload
(streamcluster-shaped: rounds of ~400 independent tasks joined by
barriers, the structure of the paper's largest workload) replayed
through all four golden managers via ``Machine.run_stream``.

Two measurement passes per manager:

* **throughput** — wall time, simulation events/sec and tasks/sec for
  the full stream, with process peak RSS (``ru_maxrss``) recorded before
  and after; the report asserts the final peak stays under
  ``--rss-bound-mb`` (the documented bound: streaming keeps live state
  O(in-flight window), so RSS is flat in task count);
* **heap** — a ``tracemalloc``-instrumented run at reduced length
  (tracemalloc distorts wall time, and the streaming heap profile is
  scale-invariant — pinned by the bounded-memory property test in
  ``tests/properties/test_stream_memory.py``) documenting the traced
  Python-heap peak.

Run with::

    PYTHONPATH=src python benchmarks/bench_large_scale.py [--quick]

Writes ``BENCH_large_scale.json`` (repo root by default).
"""

from __future__ import annotations

import argparse
import json
import math
import resource
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.factories import (  # noqa: E402
    ideal_factory,
    nanos_factory,
    nexus_pp_factory,
    nexus_sharp_factory,
)
from repro.system.machine import Machine, MachineConfig  # noqa: E402
from repro.workloads.synthetic import stream_fork_join  # noqa: E402

BENCH_SEED = 2015
#: Tasks per fork-join round (the paper's streamcluster runs "groups of
#: about 400 tasks followed by a taskwait").
ROUND_WIDTH = 400

MANAGERS = {
    "ideal": ideal_factory(),
    "nanos": nanos_factory(),
    "nexus++": nexus_pp_factory(),
    "nexus#6": nexus_sharp_factory(6),
}


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MiB (ru_maxrss is KiB on Linux,
    bytes on macOS)."""
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / divisor


def _phases_for(num_tasks: int) -> int:
    """Fork-join rounds needed for at least ``num_tasks`` tasks."""
    return max(1, math.ceil(num_tasks / (ROUND_WIDTH + 1)))


def _make_stream(phases: int):
    return stream_fork_join(
        phases, ROUND_WIDTH, duration_us=80.0, seed=BENCH_SEED,
        name="large-scale-fork-join",
    )


def _run_stream(factory, phases: int, cores: int, max_in_flight: int):
    machine = Machine(factory(), MachineConfig(num_cores=cores, keep_schedule=False))
    result = machine.run_stream(_make_stream(phases), max_in_flight=max_in_flight)
    return result, machine.last_events_processed


def run_benchmark(
    num_tasks: int,
    heap_tasks: int,
    cores: int,
    max_in_flight: int,
    rss_bound_mb: float,
) -> Dict[str, object]:
    phases = _phases_for(num_tasks)
    heap_phases = _phases_for(heap_tasks)
    per_manager: Dict[str, object] = {}
    for name, factory in MANAGERS.items():
        rss_before_mb = _peak_rss_mb()
        start = time.perf_counter()
        result, events = _run_stream(factory, phases, cores, max_in_flight)
        wall_s = time.perf_counter() - start
        rss_after_mb = _peak_rss_mb()

        tracemalloc.start()
        _run_stream(factory, heap_phases, cores, max_in_flight)
        _, heap_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        per_manager[name] = {
            "num_tasks": result.num_tasks,
            "makespan_us": result.makespan_us,
            "wall_seconds": round(wall_s, 3),
            "events_processed": events,
            "events_per_sec": round(events / wall_s) if wall_s > 0 else None,
            "tasks_per_sec": round(result.num_tasks / wall_s) if wall_s > 0 else None,
            "peak_rss_before_mb": round(rss_before_mb, 1),
            "peak_rss_after_mb": round(rss_after_mb, 1),
            "heap_pass_tasks": heap_phases * (ROUND_WIDTH + 1),
            "heap_peak_mb": round(heap_peak / (1024 * 1024), 2),
        }
        print(f"{name:8s} {result.num_tasks:>9,} tasks  {wall_s:7.1f}s  "
              f"{per_manager[name]['events_per_sec']:>9,} ev/s  "
              f"peak RSS {rss_after_mb:6.1f} MB  "
              f"heap peak {per_manager[name]['heap_peak_mb']:6.2f} MB")

    final_peak_mb = _peak_rss_mb()
    return {
        "benchmark": "large_scale_streaming",
        "schema": 1,
        "config": {
            "workload": f"fork-join stream: {phases} rounds x {ROUND_WIDTH} tasks "
                        "+ 1 reduce, taskwait-joined (streamcluster-shaped)",
            "num_tasks": phases * (ROUND_WIDTH + 1),
            "cores": cores,
            "seed": BENCH_SEED,
            "max_in_flight": max_in_flight,
            "machine_config": "run_stream, fifo scheduler, homogeneous topology, "
                              "keep_schedule=False",
            "note": "RSS bound holds because run_stream keeps live state "
                    "O(in-flight window + lookahead), never O(total tasks); "
                    "the heap pass runs shorter under tracemalloc (which "
                    "distorts wall time) — the streaming heap profile is "
                    "scale-invariant, see tests/properties/test_stream_memory.py",
        },
        "managers": per_manager,
        "peak_rss_mb": round(final_peak_mb, 1),
        "rss_bound_mb": rss_bound_mb,
        "meets_rss_bound": final_peak_mb <= rss_bound_mb,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="~50k tasks instead of 1M (CI smoke mode)")
    parser.add_argument("--num-tasks", type=int, default=None,
                        help="target task count (default 1_000_000, quick 50_000)")
    parser.add_argument("--cores", type=int, default=32)
    parser.add_argument("--max-in-flight", type=int, default=4096,
                        help="back-pressure window for run_stream")
    parser.add_argument("--rss-bound-mb", type=float, default=256.0,
                        help="documented peak-RSS ceiling the run must stay under")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_large_scale.json"))
    args = parser.parse_args()

    num_tasks = args.num_tasks if args.num_tasks is not None else (
        50_000 if args.quick else 1_000_000)
    heap_tasks = min(num_tasks, 20_000 if args.quick else 100_000)
    report = run_benchmark(
        num_tasks=num_tasks,
        heap_tasks=heap_tasks,
        cores=args.cores,
        max_in_flight=args.max_in_flight,
        rss_bound_mb=args.rss_bound_mb,
    )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    print(f"peak RSS {report['peak_rss_mb']} MB (bound {report['rss_bound_mb']} MB) "
          f"-> {'OK' if report['meets_rss_bound'] else 'EXCEEDED'}")
    return 0 if report["meets_rss_bound"] else 1


if __name__ == "__main__":
    sys.exit(main())
