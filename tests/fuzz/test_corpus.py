"""Replay the pinned fuzz corpus — the hypothesis-free regression layer.

Every corpus spec runs under all four golden managers through **both**
dynamic tracking paths (``Machine.run`` = growable compiled program,
``Machine.run_stream`` = access-by-access), asserting the acceptance
invariants of the dynamic runtime:

* byte-identical makespans and ready orders between the two paths;
* schedules that respect every address dependency
  (``validate_schedule`` on the recorded submission order);
* no starvation: every task the program spawns also finishes;
* exact determinism across repeated runs.
"""

from __future__ import annotations

import pytest

from repro.system.machine import Machine, MachineConfig
from repro.workloads.fuzz import fuzz_program

from fuzz_corpus import CORPUS
from golden_manager_factories import GOLDEN_TEST_MANAGERS

CORPUS_IDS = [f"seed{spec.seed}" for spec in CORPUS]
MANAGER_IDS = list(GOLDEN_TEST_MANAGERS)


@pytest.mark.parametrize("spec", CORPUS, ids=CORPUS_IDS)
@pytest.mark.parametrize("manager_key", MANAGER_IDS)
def test_corpus_differential(spec, manager_key):
    factory = GOLDEN_TEST_MANAGERS[manager_key]
    program = fuzz_program(spec)

    compiled_machine = Machine(factory(), MachineConfig(num_cores=4, validate=True))
    compiled = compiled_machine.run(program)

    dynamic_machine = Machine(factory(), MachineConfig(num_cores=4, validate=True))
    dynamic = dynamic_machine.run_stream(program)

    # The two tracking paths must be byte-identical.
    assert compiled.makespan_us == dynamic.makespan_us
    assert compiled_machine.last_ready_order == dynamic_machine.last_ready_order
    assert compiled.start_times == dynamic.start_times
    assert compiled.finish_times == dynamic.finish_times

    # No starvation: everything the program spawns also finishes.
    assert compiled.num_tasks == program.metadata["num_tasks"]
    assert len(compiled.finish_times) == compiled.num_tasks


@pytest.mark.parametrize("spec", CORPUS, ids=CORPUS_IDS)
def test_corpus_replays_are_exactly_deterministic(spec):
    factory = GOLDEN_TEST_MANAGERS["nexussharp"]
    results = []
    orders = []
    for _ in range(2):
        machine = Machine(factory(), MachineConfig(num_cores=4))
        results.append(machine.run(fuzz_program(spec)))
        orders.append(machine.last_ready_order)
    assert results[0].makespan_us == results[1].makespan_us
    assert results[0].manager_stats == results[1].manager_stats
    assert orders[0] == orders[1]


@pytest.mark.parametrize("spec", CORPUS, ids=CORPUS_IDS)
def test_corpus_elaborations_replay_statically(spec):
    """The serial elaboration is a valid static trace of the same tasks."""
    from repro.system.machine import simulate

    program = fuzz_program(spec)
    trace = program.elaborate()
    assert trace.num_tasks == program.metadata["num_tasks"]
    result = simulate(trace, GOLDEN_TEST_MANAGERS["nexuspp"](), num_cores=4, validate=True)
    assert result.num_tasks == trace.num_tasks


@pytest.mark.parametrize("spec", CORPUS[:3], ids=CORPUS_IDS[:3])
@pytest.mark.parametrize("scheduler", ["fifo", "sjf", "locality"])
def test_corpus_under_alternative_schedulers(spec, scheduler):
    """Dynamic dispatch honours pluggable policies without starvation."""
    factory = GOLDEN_TEST_MANAGERS["ideal"]
    machine = Machine(factory(), MachineConfig(num_cores=2, validate=True,
                                               scheduler=scheduler))
    result = machine.run(fuzz_program(spec))
    assert result.num_tasks == fuzz_program(spec).metadata["num_tasks"]
    assert result.scheduler == scheduler
