"""Tests for the dependence-counts table, task pool and function table."""

import pytest

from repro.common.errors import CapacityError, SimulationError
from repro.taskgraph.dep_counts import DependenceCountsTable
from repro.taskgraph.function_table import FunctionTable
from repro.taskgraph.task_pool import TaskPool
from repro.trace.task import TaskDescriptor, make_params


def task(task_id, n_params=1):
    return TaskDescriptor(
        task_id=task_id,
        function="f",
        params=make_params(outputs=[0x40 * (i + 1) for i in range(n_params)]),
        duration_us=1.0,
    )


class TestDependenceCountsTable:
    def test_register_and_ready(self):
        table = DependenceCountsTable()
        table.register(1, 0)
        table.register(2, 3)
        assert table.ready_tasks() == [1]
        assert table.pending(2) == 3

    def test_decrement_to_zero(self):
        table = DependenceCountsTable()
        table.register(1, 2)
        assert table.decrement(1) is False
        assert table.decrement(1) is True

    def test_negative_count_raises(self):
        table = DependenceCountsTable()
        table.register(1, 0)
        with pytest.raises(SimulationError):
            table.decrement(1)

    def test_double_register_raises(self):
        table = DependenceCountsTable()
        table.register(1, 0)
        with pytest.raises(SimulationError):
            table.register(1, 0)

    def test_unknown_task_raises(self):
        table = DependenceCountsTable()
        with pytest.raises(SimulationError):
            table.pending(7)
        with pytest.raises(SimulationError):
            table.decrement(7)
        with pytest.raises(SimulationError):
            table.remove(7)

    def test_remove_and_peak(self):
        table = DependenceCountsTable()
        table.register(1, 0)
        table.register(2, 1)
        table.remove(1)
        assert len(table) == 1
        assert table.peak_entries == 2

    def test_reset(self):
        table = DependenceCountsTable()
        table.register(1, 0)
        table.reset()
        assert len(table) == 0


class TestTaskPool:
    def test_insert_get_remove(self):
        pool = TaskPool(capacity=4)
        pool.insert(task(1))
        assert 1 in pool
        assert pool.get(1).task_id == 1
        removed = pool.remove(1)
        assert removed.task_id == 1
        assert len(pool) == 0

    def test_full_flag(self):
        pool = TaskPool(capacity=1)
        assert pool.insert(task(1)) is False
        assert pool.is_full
        assert pool.insert(task(2)) is True
        assert pool.stats.full_events == 1

    def test_double_insert_raises(self):
        pool = TaskPool()
        pool.insert(task(1))
        with pytest.raises(SimulationError):
            pool.insert(task(1))

    def test_unknown_task_raises(self):
        pool = TaskPool()
        with pytest.raises(SimulationError):
            pool.get(5)
        with pytest.raises(SimulationError):
            pool.remove(5)

    def test_peak_occupancy(self):
        pool = TaskPool(capacity=8)
        for i in range(5):
            pool.insert(task(i))
        for i in range(5):
            pool.remove(i)
        assert pool.stats.peak_occupancy == 5

    def test_reset(self):
        pool = TaskPool()
        pool.insert(task(1))
        pool.reset()
        assert len(pool) == 0


class TestFunctionTable:
    def test_intern_is_idempotent(self):
        table = FunctionTable()
        first = table.intern("decode")
        second = table.intern("decode")
        assert first == second
        assert len(table) == 1

    def test_distinct_functions_get_distinct_ids(self):
        table = FunctionTable()
        assert table.intern("a") != table.intern("b")

    def test_lookup_both_directions(self):
        table = FunctionTable()
        fid = table.intern("render")
        assert table.lookup_id("render") == fid
        assert table.lookup_name(fid) == "render"

    def test_capacity_enforced(self):
        table = FunctionTable(capacity=2)
        table.intern("a")
        table.intern("b")
        with pytest.raises(CapacityError):
            table.intern("c")

    def test_unknown_lookups_raise(self):
        table = FunctionTable()
        with pytest.raises(CapacityError):
            table.lookup_id("missing")
        with pytest.raises(CapacityError):
            table.lookup_name(3)

    def test_contains_and_reset(self):
        table = FunctionTable()
        table.intern("a")
        assert "a" in table
        table.reset()
        assert "a" not in table
