"""Unit tests of the bounded-queue admission controller.

Exercises the EWMA Retry-After estimate under pathological service
times — zero-duration bursts, monotonically-degrading service, and both
clamp boundaries — alongside the all-or-nothing admission contract.
"""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController, Saturated


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def controller(max_pending=10):
    return AdmissionController(max_pending, clock=FakeClock())


class TestAdmission:
    def test_max_pending_is_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(0)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            controller().try_acquire(-1)

    def test_admission_is_all_or_nothing(self):
        ctl = controller(max_pending=10)
        ctl.try_acquire(8)
        with pytest.raises(Saturated):
            ctl.try_acquire(3)  # 8 + 3 > 10: none of the 3 admitted
        assert ctl.pending == 8
        ctl.try_acquire(2)  # but exactly-fits still fits
        assert ctl.pending == 10

    def test_rejections_are_counted(self):
        ctl = controller(max_pending=1)
        ctl.try_acquire(1)
        for _ in range(3):
            with pytest.raises(Saturated):
                ctl.try_acquire(1)
        assert ctl.rejected == 3

    def test_saturated_carries_the_queue_state(self):
        ctl = controller(max_pending=5)
        ctl.try_acquire(5)
        with pytest.raises(Saturated) as info:
            ctl.try_acquire(2)
        assert info.value.pending == 5
        assert info.value.max_pending == 5
        assert info.value.retry_after == ctl.MIN_RETRY_AFTER

    def test_release_never_goes_negative(self):
        ctl = controller()
        ctl.release(50)
        assert ctl.pending == 0


class TestEwmaRetryAfter:
    def test_no_observations_fall_back_to_the_floor(self):
        assert controller().retry_after(1) == AdmissionController.MIN_RETRY_AFTER

    def test_first_observation_seeds_the_rate(self):
        ctl = controller()
        ctl.try_acquire(10)
        ctl.release(10, elapsed=2.0)  # 5 cells/s
        assert ctl.service_rate == pytest.approx(5.0)

    def test_ewma_blends_seven_to_three(self):
        ctl = controller()
        ctl.release(10, elapsed=2.0)   # seed: 5 cells/s
        ctl.release(10, elapsed=10.0)  # observe 1 cell/s
        assert ctl.service_rate == pytest.approx(0.7 * 5.0 + 0.3 * 1.0)

    def test_zero_duration_bursts_are_ignored(self):
        """A block that finishes between clock ticks must not divide by
        zero or poison the rate with infinity."""
        ctl = controller()
        ctl.release(10, elapsed=2.0)
        for _ in range(5):
            ctl.release(4, elapsed=0.0)
        ctl.release(3, elapsed=None)
        ctl.release(0, elapsed=1.0)  # zero cells is equally uninformative
        assert ctl.service_rate == pytest.approx(5.0)
        assert ctl.retry_after(1) == AdmissionController.MIN_RETRY_AFTER

    def test_monotone_increasing_service_times_raise_the_estimate(self):
        """A server degrading run over run (each block slower than the
        last) must push Retry-After monotonically up."""
        ctl = controller(max_pending=10)
        ctl.try_acquire(10)
        estimates = []
        for elapsed in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0):
            ctl.release(10, elapsed=elapsed)
            ctl.try_acquire(10)
            estimates.append(ctl.retry_after(10))
        assert estimates == sorted(estimates)
        assert estimates[0] < estimates[-1]

    def test_fast_service_clamps_to_the_one_second_floor(self):
        ctl = controller(max_pending=10)
        ctl.release(1000, elapsed=0.1)  # 10k cells/s: estimate ~1 ms
        ctl.try_acquire(10)
        assert ctl.retry_after(1) == AdmissionController.MIN_RETRY_AFTER

    def test_slow_service_clamps_to_the_sixty_second_ceiling(self):
        ctl = controller(max_pending=10)
        ctl.release(1, elapsed=1000.0)  # 0.001 cells/s: estimate ~hours
        ctl.try_acquire(10)
        assert ctl.retry_after(10) == AdmissionController.MAX_RETRY_AFTER

    def test_estimate_scales_with_the_overflow(self):
        ctl = controller(max_pending=10)
        ctl.release(10, elapsed=10.0)  # 1 cell/s
        ctl.try_acquire(10)
        # Need room for 5 cells → 5 must drain → ~5 s at 1 cell/s.
        assert ctl.retry_after(5) == pytest.approx(5.0)
        assert ctl.retry_after(8) == pytest.approx(8.0)


class TestRetryAfterClampOrder:
    """Regression tests for multi-cell sweep requests: the drain estimate
    must be computed *then* clamped, and a request bigger than the whole
    queue budget must answer the ceiling, not an optimistic drain guess."""

    def test_never_fitting_request_answers_the_ceiling(self):
        ctl = controller(max_pending=5)
        # Before any rate observation...
        assert ctl.retry_after(6) == AdmissionController.MAX_RETRY_AFTER
        # ...and even with a blazing measured rate: no amount of draining
        # makes a 6-cell sweep fit a 5-cell queue.
        ctl.release(100, elapsed=1.0)  # 100 cells/s
        assert ctl.retry_after(6) == AdmissionController.MAX_RETRY_AFTER

    def test_large_cells_estimate_is_clamped_not_wrapped(self):
        ctl = controller(max_pending=1000)
        ctl.release(10, elapsed=5.0)  # 2 cells/s
        ctl.try_acquire(900)
        assert ctl.retry_after(102) == pytest.approx(1.0)   # 2 cells / 2 per s, floored
        assert ctl.retry_after(120) == pytest.approx(10.0)  # 20 cells / 2 per s
        # 900 cells overflow → 450 s raw estimate → ceiling.
        assert ctl.retry_after(1000) == AdmissionController.MAX_RETRY_AFTER

    def test_fitting_request_answers_the_floor_even_at_glacial_rates(self):
        ctl = controller(max_pending=10)
        ctl.release(1, elapsed=1000.0)  # 0.001 cells/s
        assert ctl.retry_after(1) == AdmissionController.MIN_RETRY_AFTER

    def test_retry_after_is_monotone_in_cells(self):
        ctl = controller(max_pending=50)
        ctl.release(10, elapsed=10.0)  # 1 cell/s
        ctl.try_acquire(40)
        estimates = [ctl.retry_after(cells) for cells in range(200)]
        assert estimates == sorted(estimates)
        assert estimates[0] == AdmissionController.MIN_RETRY_AFTER
        assert estimates[-1] == AdmissionController.MAX_RETRY_AFTER
