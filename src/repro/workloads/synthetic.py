"""Synthetic workload generators.

These generators are not part of the paper's evaluation; they exist for
unit tests, property-based tests and ablation studies that need traces
with controlled structure: fully independent tasks, serial chains,
fork-join phases and random layered DAGs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.trace.task import Direction, Parameter
from repro.trace.trace import Trace, TraceBuilder
from repro.workloads.addressing import AddressSpace


def generate_independent(
    num_tasks: int,
    duration_us: float = 10.0,
    *,
    params_per_task: int = 1,
    seed: Optional[int] = None,
    name: str = "synthetic-independent",
) -> Trace:
    """``num_tasks`` fully independent tasks of equal duration."""
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    if duration_us < 0:
        raise ConfigurationError(f"duration_us must be >= 0, got {duration_us}")
    if params_per_task <= 0:
        raise ConfigurationError(f"params_per_task must be positive, got {params_per_task}")
    space = AddressSpace(seed=seed)
    builder = TraceBuilder(name, metadata={"num_tasks": num_tasks, "duration_us": duration_us})
    for _ in range(num_tasks):
        builder.add_task("work", duration_us=duration_us, outputs=space.alloc(params_per_task))
    builder.add_taskwait()
    return builder.build()


def generate_chain(
    num_tasks: int,
    duration_us: float = 10.0,
    *,
    seed: Optional[int] = None,
    name: str = "synthetic-chain",
) -> Trace:
    """A strictly serial chain: task ``i`` depends on task ``i-1``."""
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    space = AddressSpace(seed=seed)
    token = space.alloc_one()
    builder = TraceBuilder(name, metadata={"num_tasks": num_tasks, "duration_us": duration_us})
    for _ in range(num_tasks):
        builder.add_task("link", duration_us=duration_us, inouts=[token])
    builder.add_taskwait()
    return builder.build()


def generate_fork_join(
    num_phases: int,
    width: int,
    duration_us: float = 10.0,
    *,
    use_taskwait: bool = True,
    seed: Optional[int] = None,
    name: str = "synthetic-fork-join",
) -> Trace:
    """``num_phases`` phases of ``width`` independent tasks with joins.

    When ``use_taskwait`` is false, the join is expressed through data
    dependencies on a shared reduction variable instead of a barrier,
    which exercises the WAR/WAW paths of the dependency trackers.
    """
    if num_phases <= 0 or width <= 0:
        raise ConfigurationError(f"num_phases and width must be positive, got {num_phases}, {width}")
    space = AddressSpace(seed=seed)
    builder = TraceBuilder(
        name,
        metadata={"num_phases": num_phases, "width": width, "duration_us": duration_us},
    )
    reduction = space.alloc_one()
    chunk_addresses = space.alloc(width)
    for _phase in range(num_phases):
        for chunk in range(width):
            builder.add_task(
                "phase_work",
                duration_us=duration_us,
                inputs=[reduction],
                inouts=[chunk_addresses[chunk]],
            )
        if use_taskwait:
            builder.add_taskwait()
        builder.add_task("reduce", duration_us=duration_us, inouts=[reduction])
    builder.add_taskwait()
    return builder.build()


def generate_random_dag(
    num_tasks: int,
    *,
    max_predecessors: int = 3,
    duration_range_us: tuple[float, float] = (1.0, 50.0),
    write_probability: float = 0.7,
    seed: Optional[int] = None,
    name: str = "synthetic-random-dag",
) -> Trace:
    """A random DAG expressed through data dependencies.

    Each task writes one fresh output address and reads up to
    ``max_predecessors`` addresses produced by earlier tasks, chosen
    uniformly at random; with probability ``1 - write_probability`` a
    "read" parameter is instead declared ``inout``, exercising WAR/WAW
    edges.  Barriers are not used, so the trace's parallelism is purely
    data-driven.
    """
    if num_tasks <= 0:
        raise ConfigurationError(f"num_tasks must be positive, got {num_tasks}")
    if max_predecessors < 0:
        raise ConfigurationError(f"max_predecessors must be >= 0, got {max_predecessors}")
    low, high = duration_range_us
    if low < 0 or high < low:
        raise ConfigurationError(f"invalid duration range {duration_range_us}")
    if not 0.0 <= write_probability <= 1.0:
        raise ConfigurationError(f"write_probability must be in [0, 1], got {write_probability}")
    rng = make_rng(seed, "random-dag")
    space = AddressSpace(seed=seed)
    builder = TraceBuilder(
        name,
        metadata={
            "num_tasks": num_tasks,
            "max_predecessors": max_predecessors,
            "duration_range_us": list(duration_range_us),
        },
    )
    produced: list[int] = []
    for index in range(num_tasks):
        output = space.alloc_one()
        params: list[Parameter] = []
        if produced and max_predecessors > 0:
            num_preds = int(rng.integers(0, max_predecessors + 1))
            if num_preds:
                chosen = rng.choice(len(produced), size=min(num_preds, len(produced)), replace=False)
                for pick in np.atleast_1d(chosen):
                    address = produced[int(pick)]
                    if rng.random() < write_probability:
                        params.append(Parameter(address=address, direction=Direction.IN))
                    else:
                        params.append(Parameter(address=address, direction=Direction.INOUT))
        params.append(Parameter(address=output, direction=Direction.OUT))
        duration = float(rng.uniform(low, high)) if high > low else float(low)
        builder.add_task(f"node_{index % 7}", duration_us=duration, params=params)
        produced.append(output)
    builder.add_taskwait()
    return builder.build()
