"""Unit tests for the shared retry policy.

The deterministic-jitter contract is load-bearing: `ServeClient`, the
socket worker's reconnect loop and the batcher's fabric fallback all
back off on schedules that are pure functions of ``(policy, key)``, so
these tests pin exact schedules — a change that shifts them is a
behaviour change for every client seam at once.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.resilience.retry import (
    RetryBudgetExhausted,
    RetryPolicy,
    call_with_retry,
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline=0.0)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        assert policy.schedule() == (0.1, 0.2, 0.4, 0.5)

    def test_jitter_is_deterministic_per_key(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
        assert policy.schedule(key="worker-3") == policy.schedule(key="worker-3")
        assert policy.schedule(key="worker-3") != policy.schedule(key="worker-4")

    def test_pinned_schedules(self):
        """The exact backoff schedules of the shared policies.

        Pinned on purpose: the chaos soak and the reconnect tests rely
        on runs being reproducible down to the sleep pattern.
        """
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             max_delay=5.0, jitter=0.5, seed=7)
        assert policy.schedule(key="worker-3") == pytest.approx(
            (0.081407781538, 0.121258153075, 0.292968181911))
        assert policy.schedule(key="worker-4") == pytest.approx(
            (0.052666198264, 0.112725103016, 0.396360390094))

    def test_pinned_worker_connect_schedule(self):
        from repro.distributed.worker import CONNECT_POLICY

        assert CONNECT_POLICY.schedule(key="connect:w0") == pytest.approx(
            (0.129853661798, 0.240724158103, 0.710356916206, 1.243929116217))

    def test_pinned_serve_client_schedule(self):
        """The serving client shares the same RetryPolicy machinery as
        the socket workers — one backoff discipline, pinned here."""
        from repro.serve.client import CLIENT_RETRY_POLICY

        assert isinstance(CLIENT_RETRY_POLICY, RetryPolicy)
        assert CLIENT_RETRY_POLICY.schedule(key="POST /v1/simulate") == \
            pytest.approx(
                (0.045185991701, 0.083052157461, 0.192101032236))

    def test_jitter_bounds(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=1.0,
                             jitter=0.5, seed=3)
        for attempt in range(5):
            raw = min(0.1 * 2.0 ** attempt, 1.0)
            delay = policy.delay(attempt, key="k")
            assert raw * 0.5 < delay <= raw


class TestCallWithRetry:
    def run(self, fn, policy, **kwargs):
        sleeps = []
        kwargs.setdefault("sleep", sleeps.append)
        kwargs.setdefault("clock", lambda: 0.0)
        result = call_with_retry(fn, policy, **kwargs)
        return result, sleeps

    def test_success_needs_no_sleep(self):
        result, sleeps = self.run(lambda: 42, RetryPolicy())
        assert result == 42 and sleeps == []

    def test_retries_follow_the_pinned_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
        failures = [OSError("boom"), OSError("boom")]

        def flaky():
            if failures:
                raise failures.pop(0)
            return "ok"

        result, sleeps = self.run(flaky, policy, key="worker-3")
        assert result == "ok"
        assert sleeps == pytest.approx([0.081407781538, 0.121258153075])

    def test_unlisted_exception_propagates_immediately(self):
        def bad():
            raise ValueError("deterministic bug")

        with pytest.raises(ValueError):
            self.run(bad, RetryPolicy(), retry_on=(OSError,))

    def test_should_retry_vetoes_individual_instances(self):
        def bad():
            raise OSError(22, "invalid argument")

        with pytest.raises(OSError):
            self.run(bad, RetryPolicy(),
                     should_retry=lambda exc: exc.errno != 22)

    def test_retry_after_overrides_the_backoff_delay(self):
        policy = RetryPolicy(max_attempts=3, base_delay=10.0, jitter=0.0)
        failures = [OSError("429-ish")]

        def flaky():
            if failures:
                raise failures.pop(0)
            return "ok"

        result, sleeps = self.run(flaky, policy,
                                  retry_after=lambda exc: 0.25)
        assert result == "ok" and sleeps == [0.25]

    def test_budget_exhaustion_carries_the_last_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

        def always():
            raise OSError("still down")

        with pytest.raises(RetryBudgetExhausted) as err:
            self.run(always, policy)
        assert err.value.attempts == 3
        assert isinstance(err.value.last_error, OSError)
        assert isinstance(err.value.__cause__, OSError)

    def test_deadline_bounds_the_loop(self):
        # A fake clock that advances 2 s per call: the 3 s deadline is
        # spent before the attempt budget is.
        ticks = iter(range(0, 1000, 2))
        policy = RetryPolicy(max_attempts=50, base_delay=0.5, jitter=0.0,
                             deadline=3.0)

        def always():
            raise OSError("still down")

        with pytest.raises(RetryBudgetExhausted) as err:
            call_with_retry(always, policy, sleep=lambda s: None,
                            clock=lambda: float(next(ticks)))
        assert err.value.attempts < 50
        assert "deadline" in str(err.value)

    def test_on_retry_sees_attempt_error_and_pause(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        seen = []
        failures = [OSError("a"), OSError("b")]

        def flaky():
            if failures:
                raise failures.pop(0)
            return "ok"

        self.run(flaky, policy,
                 on_retry=lambda n, exc, pause: seen.append((n, str(exc), pause)))
        assert seen == [(0, "a", 0.1), (1, "b", 0.2)]
